package auditlog

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
)

// Dict is the sensitivity dictionary: it maps dataset attributes to
// named sensitivity classes and assigns each class a weight, so the
// enrich stage can score a historical query without consulting the
// dataset itself. Loaded from JSON; DefaultDict covers the built-in
// company schema.
type Dict struct {
	// Classes maps a sensitivity-class name to its weight (higher is
	// more sensitive). Weights are relative, not calibrated.
	Classes map[string]float64 `json:"classes"`
	// Attributes maps a dataset attribute name to its class.
	Attributes map[string]string `json:"attributes"`
	// Kinds maps an aggregation kind ("sum", "max", ...) to a risk
	// factor: order statistics leak bounds on individual records and
	// score above 1, counts leak only cardinality and score below.
	Kinds map[string]float64 `json:"kinds"`
	// DefaultClass is assumed for attributes missing from Attributes
	// (empty means weight 0 — unknown attributes contribute nothing).
	DefaultClass string `json:"default_class,omitempty"`
}

// DefaultDict scores the built-in company schema: the aggregate target
// is sensitive, the narrow demographics (age, zip) are quasi-
// identifiers that carve small query sets, and dept is a broad
// organizational attribute.
func DefaultDict() Dict {
	return Dict{
		Classes: map[string]float64{
			"sensitive":        1.0,
			"quasi-identifier": 0.6,
			"organizational":   0.3,
			"public":           0.1,
		},
		Attributes: map[string]string{
			"salary": "sensitive",
			"age":    "quasi-identifier",
			"zip":    "quasi-identifier",
			"dept":   "organizational",
		},
		Kinds: map[string]float64{
			"sum":    1.0,
			"avg":    1.0,
			"median": 1.1,
			"max":    1.3,
			"min":    1.3,
			"count":  0.2,
		},
	}
}

// LoadDict reads a sensitivity dictionary from a JSON file and
// validates that every attribute's class is defined.
func LoadDict(path string) (Dict, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Dict{}, err
	}
	var d Dict
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return Dict{}, fmt.Errorf("auditlog: %s: %w", path, err)
	}
	if len(d.Classes) == 0 {
		return Dict{}, fmt.Errorf("auditlog: %s: dictionary defines no classes", path)
	}
	attrs := make([]string, 0, len(d.Attributes))
	//auditlint:allow detrand keys are sorted immediately below
	for attr := range d.Attributes {
		attrs = append(attrs, attr)
	}
	sort.Strings(attrs)
	for _, attr := range attrs {
		if _, ok := d.Classes[d.Attributes[attr]]; !ok {
			return Dict{}, fmt.Errorf("auditlog: %s: attribute %q names undefined class %q", path, attr, d.Attributes[attr])
		}
	}
	if d.DefaultClass != "" {
		if _, ok := d.Classes[d.DefaultClass]; !ok {
			return Dict{}, fmt.Errorf("auditlog: %s: default_class %q is undefined", path, d.DefaultClass)
		}
	}
	return d, nil
}

// attrWeight looks up one attribute's sensitivity weight.
func (d Dict) attrWeight(attr string) float64 {
	if class, ok := d.Attributes[attr]; ok {
		return d.Classes[class]
	}
	if d.DefaultClass != "" {
		return d.Classes[d.DefaultClass]
	}
	return 0
}

// kindFactor looks up one aggregation kind's risk factor (1 when the
// dictionary is silent about the kind).
func (d Dict) kindFactor(kind string) float64 {
	if f, ok := d.Kinds[kind]; ok {
		return f
	}
	return 1
}

// Risk is the enrichment verdict for one entry:
//
//	Score = AttrScore × KindFactor × BreadthFactor
//
// AttrScore sums the sensitivity weights of every attribute the query
// touches (aggregate target plus predicate attributes). BreadthFactor
// is 1 + log2(N / |Q|): a query pinning down one record out of N scores
// ~1+log2(N), a full-population aggregate scores 1. When breadth is
// unknown (external log without a resolver) it stays 1, so external and
// journal scores remain comparable on the shared factors.
type Risk struct {
	Attrs         []string `json:"attrs,omitempty"`
	AttrScore     float64  `json:"attr_score"`
	Kind          string   `json:"kind,omitempty"`
	KindFactor    float64  `json:"kind_factor"`
	Breadth       int      `json:"breadth"`
	BreadthFactor float64  `json:"breadth_factor"`
	Score         float64  `json:"score"`
}

// Enriched is one entry joined with its risk verdict — the enriched
// ndjson record the enrich stage emits.
type Enriched struct {
	Entry
	Risk Risk `json:"risk"`
	// Error records why an entry could not be scored (unparseable SQL);
	// such entries keep Score 0 and are counted by the report.
	Error string `json:"error,omitempty"`
}

// Enricher scores entries against a dictionary. Records is the dataset
// size N used by the breadth factor. Sensitive names the aggregate
// target attribute; Sel optionally resolves external-log SQL to its
// query set so breadth is known for those entries too (predicates touch
// only immutable public attributes, so one shared resolver is safe).
type Enricher struct {
	Dict      Dict
	Records   int
	Sensitive string
	Sel       core.Selector
}

// Enrich scores every entry, preserving stream order.
func (en *Enricher) Enrich(entries []Entry) []Enriched {
	out := make([]Enriched, 0, len(entries))
	for _, e := range entries {
		enr := Enriched{Entry: e}
		if e.Op == OpQuery {
			risk, err := en.Score(e)
			enr.Risk = risk
			if err != nil {
				enr.Error = err.Error()
			}
		}
		out = append(out, enr)
	}
	return out
}

// Score computes one query entry's risk.
func (en *Enricher) Score(e Entry) (Risk, error) {
	var r Risk
	attrs := []string{}
	r.Kind = e.Kind
	r.Breadth = len(e.Indices)
	if e.SQL != "" {
		stmt, err := core.Parse(e.SQL)
		if err != nil {
			return Risk{}, err
		}
		if r.Kind == "" {
			r.Kind = stmt.Agg.String()
		}
		attrs = append(attrs, stmt.Target)
		attrs = append(attrs, predAttrs(stmt.Preds)...)
		if r.Breadth == 0 && en.Sel != nil {
			r.Breadth = len(en.Sel.Select(stmt.Predicate()))
		}
	} else if en.Sensitive != "" {
		// Journal entries carry no statement text; the aggregate target
		// is the only attribute the record names.
		attrs = append(attrs, en.Sensitive)
	}
	sort.Strings(attrs)
	for i, a := range attrs {
		if i > 0 && attrs[i-1] == a {
			continue
		}
		r.Attrs = append(r.Attrs, a)
		r.AttrScore += en.Dict.attrWeight(a)
	}
	r.KindFactor = en.Dict.kindFactor(r.Kind)
	r.BreadthFactor = 1
	if r.Breadth > 0 && en.Records >= r.Breadth {
		r.BreadthFactor = 1 + math.Log2(float64(en.Records)/float64(r.Breadth))
	}
	r.Score = r.AttrScore * r.KindFactor * r.BreadthFactor
	return r, nil
}

// predAttrs collects the attribute names a predicate tree touches.
func predAttrs(preds []dataset.Predicate) []string {
	var attrs []string
	for _, p := range preds {
		attrs = append(attrs, predicateAttrs(p)...)
	}
	return attrs
}

// predicateAttrs walks one predicate.
func predicateAttrs(p dataset.Predicate) []string {
	switch v := p.(type) {
	case dataset.RangePred:
		return []string{v.Attr}
	case dataset.EqPred:
		return []string{v.Attr}
	case dataset.AndPred:
		return predAttrs(v)
	case dataset.OrPred:
		return predAttrs(v)
	default:
		return nil
	}
}

// WriteEnriched emits the enriched stream as ndjson, one record per
// line in stream order.
func WriteEnriched(w io.Writer, enriched []Enriched) error {
	enc := json.NewEncoder(w)
	for _, e := range enriched {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
