package auditlog

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"queryaudit/internal/core"
	"queryaudit/internal/session"
)

// TestParsePGAuditFixtures: the golden CSV fixtures parse with exact
// entry/malformed/skipped accounting — per-line recovery means a torn
// quote or truncated record never takes the rest of the file with it.
func TestParsePGAuditFixtures(t *testing.T) {
	cases := []struct {
		file                       string
		entries, malformed, skipped int
	}{
		{"pgaudit_valid.csv", 4, 0, 2},     // comment + WRITE row skipped
		{"pgaudit_malformed.csv", 2, 3, 0}, // free text, short record, torn quote
		{"pgaudit_truncated.csv", 1, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			entries, st, err := ParseFile(filepath.Join("testdata", tc.file), FormatPGAuditCSV)
			if err != nil {
				t.Fatal(err)
			}
			if st.Entries != tc.entries || st.Malformed != tc.malformed || st.Skipped != tc.skipped {
				t.Fatalf("got entries=%d malformed=%d skipped=%d, want %d/%d/%d",
					st.Entries, st.Malformed, st.Skipped, tc.entries, tc.malformed, tc.skipped)
			}
			if len(entries) != tc.entries {
				t.Fatalf("len(entries)=%d, want %d", len(entries), tc.entries)
			}
			for _, e := range entries {
				if err := e.Validate(); err != nil {
					t.Fatalf("parsed entry fails validation: %v", err)
				}
				if e.SQL == "" || e.Analyst == "" || e.Line == 0 {
					t.Fatalf("entry missing fields: %+v", e)
				}
			}
		})
	}
}

// TestParsePGAuditFields: the column mapping is exact.
func TestParsePGAuditFields(t *testing.T) {
	entries, _, err := ParseFile(filepath.Join("testdata", "pgaudit_valid.csv"), FormatPGAuditCSV)
	if err != nil {
		t.Fatal(err)
	}
	e := entries[0]
	if e.Analyst != "alice" || e.Time != "2026-08-01T10:00:00Z" || e.Op != OpQuery {
		t.Fatalf("unexpected first entry: %+v", e)
	}
	if e.SQL != "SELECT sum(salary) WHERE age BETWEEN 30 AND 40" {
		t.Fatalf("unexpected SQL: %q", e.SQL)
	}
	if e.Line != 2 {
		t.Fatalf("line = %d, want 2 (comment is line 1)", e.Line)
	}
	// Every fixture statement must be parseable by the SQL front-end, or
	// the fixture is not representative of a real deployment log.
	for _, e := range entries {
		if _, err := core.Parse(e.SQL); err != nil {
			t.Fatalf("fixture statement %q does not parse: %v", e.SQL, err)
		}
	}
}

// TestParseNDJSONFixtures: the loadgen emission schema round-trips, and
// malformed lines are counted without aborting the stream.
func TestParseNDJSONFixtures(t *testing.T) {
	entries, st, err := ParseFile(filepath.Join("testdata", "audit_valid.ndjson"), FormatNDJSON)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 3 || st.Malformed != 0 {
		t.Fatalf("valid fixture: %+v", st)
	}
	if !entries[0].HasAnswer || entries[0].Answer != 123.5 || entries[0].Outcome != "answered" {
		t.Fatalf("answer not carried: %+v", entries[0])
	}
	if entries[1].HasAnswer || entries[1].Outcome != "denied" {
		t.Fatalf("denied entry: %+v", entries[1])
	}

	entries, st, err = ParseFile(filepath.Join("testdata", "audit_malformed.ndjson"), FormatNDJSON)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.Malformed != 3 || st.Skipped != 1 {
		t.Fatalf("malformed fixture: %+v", st)
	}
	if len(entries) != 2 || entries[1].Line != 6 {
		t.Fatalf("recovery lost the trailing valid line: %+v", entries)
	}
}

// TestAutoDetect: format sniffing picks the right parser for each
// shape without being told.
func TestAutoDetect(t *testing.T) {
	cases := []struct {
		file string
		want Format
	}{
		{"pgaudit_valid.csv", FormatPGAuditCSV},
		{"audit_valid.ndjson", FormatNDJSON},
	}
	for _, tc := range cases {
		_, st, err := ParseFile(filepath.Join("testdata", tc.file), FormatAuto)
		if err != nil {
			t.Fatal(err)
		}
		if st.Format != string(tc.want) {
			t.Fatalf("%s detected as %s, want %s", tc.file, st.Format, tc.want)
		}
	}
}

// exportJournal drives a live stack and returns one analyst's exported
// snapshot — the shared setup for the journal parsing and replay tests.
func exportJournal(t *testing.T, stack StackConfig, analyst string, sqls []string) (session.LogSnapshot, []core.Response) {
	t.Helper()
	mgr := newTestManager(t, stack)
	var resps []core.Response
	for _, sql := range sqls {
		q, err := core.ResolveSQL(mgr.Resolver(), "salary", sql)
		if err != nil {
			t.Fatalf("resolve %q: %v", sql, err)
		}
		resp, err := mgr.Ask(analyst, q)
		if err != nil {
			t.Fatalf("ask %q: %v", sql, err)
		}
		resps = append(resps, resp)
	}
	snap, ok := mgr.Export(analyst)
	if !ok {
		t.Fatalf("no session for %q", analyst)
	}
	return snap, resps
}

// TestParseJournal: an exported session journal normalizes into entries
// whose outcomes mirror the live transcript, in every accepted wrapper.
func TestParseJournal(t *testing.T) {
	stack := StackConfig{Family: "full", N: 40, Seed: 1}
	snap, _ := exportJournal(t, stack, "alice", []string{
		"SELECT sum(salary) WHERE age >= 30",
		"SELECT max(salary) WHERE dept = 'eng'",
		"SELECT avg(salary) WHERE age >= 21", // journaled as its inner sum
	})

	bare, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := json.Marshal(map[string]any{"shard": "shard-a", "snapshot": snap})
	if err != nil {
		t.Fatal(err)
	}
	array, err := json.Marshal([]session.LogSnapshot{snap})
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct {
		name string
		data []byte
	}{{"bare", bare}, {"cluster-wrapped", wrapped}, {"array", array}}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			entries, st, err := ParseBytes(sh.data, sh.name, FormatAuto)
			if err != nil {
				t.Fatal(err)
			}
			if st.Format != string(FormatJournal) {
				t.Fatalf("detected as %s, want journal", st.Format)
			}
			if len(entries) != 3 {
				t.Fatalf("got %d entries, want 3", len(entries))
			}
			for _, e := range entries {
				if e.Analyst != "alice" || e.Op != OpQuery || len(e.Indices) == 0 {
					t.Fatalf("journal entry malformed: %+v", e)
				}
			}
			if entries[2].Kind != "sum" {
				t.Fatalf("avg must be journaled as sum, got %q", entries[2].Kind)
			}
		})
	}
}

// TestParseJournalRejectsTamper: a bit-flipped journal fails its digest
// chain and is rejected as a unit — no partial ingest of corrupt
// history.
func TestParseJournalRejectsTamper(t *testing.T) {
	stack := StackConfig{Family: "full", N: 40, Seed: 1}
	snap, _ := exportJournal(t, stack, "alice", []string{"SELECT sum(salary) WHERE age >= 30"})
	snap.Events[0].Outcome = "denied"
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseBytes(data, "tampered", FormatJournal); err == nil {
		t.Fatal("tampered journal must be rejected")
	}
}

// FuzzParseEntry: the per-line parsers never panic, never return
// invalid entries, and are deterministic, whatever bytes arrive.
func FuzzParseEntry(f *testing.F) {
	f.Add(`2026-08-01T10:00:00Z,alice,salaries,1,READ,SELECT,"SELECT sum(salary) WHERE age >= 30"`)
	f.Add(`{"ts":"t","analyst":"a","sql":"SELECT sum(salary) WHERE age >= 30","kind":"sum","outcome":"answered","answer":1}`)
	f.Add(`{"analyst":"a","op":"update","index":3}`)
	f.Add("this line is not a csv record")
	f.Add(`{not json`)
	f.Add("a,b,c")
	f.Add("")
	f.Add(`{"analyst":"a","events":[]}`)
	f.Fuzz(func(t *testing.T, line string) {
		for _, format := range []Format{FormatPGAuditCSV, FormatNDJSON, FormatAuto} {
			e1, s1, err1 := ParseBytes([]byte(line), "fuzz", format)
			e2, s2, err2 := ParseBytes([]byte(line), "fuzz", format)
			if (err1 == nil) != (err2 == nil) || !reflect.DeepEqual(e1, e2) || s1 != s2 {
				t.Fatalf("format %s is nondeterministic on %q", format, line)
			}
			for _, e := range e1 {
				if err := e.Validate(); err != nil {
					t.Fatalf("format %s emitted invalid entry for %q: %v", format, line, err)
				}
				if strings.TrimSpace(e.Analyst) == "" {
					t.Fatalf("format %s emitted entry without analyst for %q", format, line)
				}
			}
		}
	})
}
