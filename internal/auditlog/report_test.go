package auditlog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildTestReport runs the full pipeline (parse → enrich → replay →
// report) over a fixed in-memory workload.
func buildTestReport(t *testing.T, topRisk int) Report {
	t.Helper()
	stack := StackConfig{Family: "full", N: 60, Seed: 3}
	var entries []Entry
	for _, analyst := range []string{"alice", "bob"} {
		for _, sql := range testStatements {
			entries = append(entries, Entry{
				Source: "mem", Line: len(entries) + 1, Pos: len(entries),
				Analyst: analyst, Op: OpQuery, SQL: sql,
			})
		}
	}
	entries = append(entries, Entry{
		Source: "mem", Line: len(entries) + 1, Pos: len(entries),
		Analyst: "alice", Op: OpQuery, SQL: "not sql at all", Outcome: "error",
	})

	en := &Enricher{Dict: DefaultDict(), Records: stack.N, Sensitive: "salary"}
	enriched := en.Enrich(entries)
	rp := &Replayer{Stack: stack, Workers: 2}
	replay, err := rp.Replay(entries)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Input{{SourceStats: SourceStats{Source: "mem", Format: "ndjson", Lines: len(entries), Entries: len(entries)}, SHA256: "test"}}
	return BuildReport(stack, inputs, enriched, replay, topRisk)
}

// TestBuildReport: the join between enrichment and replay is by stream
// position, counts reconcile, and denial rates come out of the replay
// tallies.
func TestBuildReport(t *testing.T) {
	rep := buildTestReport(t, 5)
	if rep.Queries != 13 || rep.Updates != 0 {
		t.Fatalf("queries=%d updates=%d", rep.Queries, rep.Updates)
	}
	if rep.Unscored != 1 {
		t.Fatalf("unscored = %d, want 1 (the unparseable line)", rep.Unscored)
	}
	if rep.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the transport-error line)", rep.Skipped)
	}
	if len(rep.Analysts) != 2 {
		t.Fatalf("analysts = %d", len(rep.Analysts))
	}
	for _, a := range rep.Analysts {
		if a.Queries != a.Answered+a.Denied+a.Errored {
			t.Fatalf("analyst %s: counts do not reconcile: %+v", a.Analyst, a)
		}
		if decided := a.Answered + a.Denied; decided > 0 {
			want := float64(a.Denied) / float64(decided)
			if a.DenialRate != want {
				t.Fatalf("analyst %s: denial rate %v, want %v", a.Analyst, a.DenialRate, want)
			}
		}
		if a.MaxRisk <= 0 {
			t.Fatalf("analyst %s: max risk not propagated", a.Analyst)
		}
		if len(a.Proximity) == 0 {
			t.Fatalf("analyst %s: proximity missing", a.Analyst)
		}
	}
	if rep.Analysts[0].Analyst >= rep.Analysts[1].Analyst {
		t.Fatal("analysts not sorted")
	}
}

// TestTopRiskOrdering: the table is capped, sorted by score descending
// with position as the tiebreak, and joined with offline verdicts.
func TestTopRiskOrdering(t *testing.T) {
	rep := buildTestReport(t, 5)
	if len(rep.TopRisk) != 5 {
		t.Fatalf("top-risk len = %d, want 5", len(rep.TopRisk))
	}
	for i := 1; i < len(rep.TopRisk); i++ {
		a, b := rep.TopRisk[i-1], rep.TopRisk[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Pos > b.Pos) {
			t.Fatalf("top-risk misordered at %d: %+v then %+v", i, a, b)
		}
	}
	for _, re := range rep.TopRisk {
		if re.Offline == "" {
			t.Fatalf("top-risk row missing offline verdict: %+v", re)
		}
	}
	// Default cap applies when topRisk <= 0.
	if rep := buildTestReport(t, 0); len(rep.TopRisk) != 10 {
		t.Fatalf("default cap = %d, want 10", len(rep.TopRisk))
	}
}

// TestReportBytesDeterministic: building and encoding the report twice
// yields byte-identical artifacts — the acceptance criterion for the
// whole pipeline.
func TestReportBytesDeterministic(t *testing.T) {
	var prev []byte
	for i := 0; i < 2; i++ {
		rep := buildTestReport(t, 5)
		var buf bytes.Buffer
		if err := EncodeReport(&buf, rep); err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(prev, buf.Bytes()) {
			t.Fatal("report bytes differ across identical runs")
		}
		prev = buf.Bytes()
	}
	if !bytes.HasSuffix(prev, []byte("\n")) {
		t.Fatal("report must end with a newline")
	}
}

// TestWriteReport: the artifact lands atomically and matches the
// encoder's bytes.
func TestWriteReport(t *testing.T) {
	rep := buildTestReport(t, 3)
	path := filepath.Join(t.TempDir(), "report.json")
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Fatal("written report differs from encoded bytes")
	}
}
