package persist

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// A dropped directory-sync error used to let WriteAtomic report success
// for a rename that might not survive a crash (errsink finding, fixed by
// propagating everything except fsync-unsupported). syncDir must surface
// real failures.
func TestSyncDirPropagatesRealErrors(t *testing.T) {
	if err := syncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("syncDir on a missing directory returned nil")
	}
}

func TestSyncDirCleanOnRealDirectory(t *testing.T) {
	if err := syncDir(t.TempDir()); err != nil {
		t.Fatalf("syncDir on a real directory: %v", err)
	}
}

func TestWriteAtomicStillSucceeds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	err := WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	})
	if err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}
}
