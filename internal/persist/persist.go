// Package persist serializes audit trails so a statistical database can
// restart without forgetting what it has already answered — forgetting
// would let an attacker replay complementary queries against a fresh
// auditor and stitch the answers together offline.
//
// Snapshots are JSON with a versioned envelope naming the auditor kind.
// Restoring always re-validates the structural invariants of the
// underlying state (snapshots may come from untrusted storage); a
// snapshot that fails validation is rejected rather than partially
// loaded.
package persist

import (
	"encoding/json"
	"fmt"
	"io"

	"queryaudit/internal/audit/maxdup"
	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/minfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/field"
	"queryaudit/internal/synopsis"
)

// Local aliases for the snapshot payload types.
type (
	synopsisSnapshot   = synopsis.Snapshot
	maxminfullSnapshot = synopsis.MaxMinSnapshot
)

// Version is the envelope schema version.
const Version = 1

// Kind names a persistable auditor type.
type Kind string

// Supported auditor kinds.
const (
	KindSumFull    Kind = "sum-full"
	KindMaxFull    Kind = "max-full"
	KindMinFull    Kind = "min-full"
	KindMaxMinFull Kind = "maxmin-full"
	KindMaxDup     Kind = "max-duplicates"
)

// envelope wraps a payload with identification.
type envelope struct {
	Version int             `json:"version"`
	Kind    Kind            `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// Save writes an auditor snapshot to w. Supported auditors: the
// full-disclosure sum (GF(2^61−1) variant), max, min, max∧min and
// duplicates-allowed max auditors. Probabilistic auditors carry Monte
// Carlo state and are rebuilt from parameters instead.
func Save(w io.Writer, auditor any) error {
	var (
		kind    Kind
		payload any
		err     error
	)
	switch a := auditor.(type) {
	case *sumfull.Auditor[field.Elem61, field.GF61]:
		kind = KindSumFull
		payload, err = a.Snapshot()
	case *maxfull.Auditor:
		kind, payload = KindMaxFull, a.Snapshot()
	case *minfull.Auditor:
		kind, payload = KindMinFull, a.Snapshot()
	case *maxminfull.Auditor:
		kind, payload = KindMaxMinFull, a.Snapshot()
	case *maxdup.Auditor:
		kind, payload = KindMaxDup, a.Snapshot()
	default:
		return fmt.Errorf("persist: unsupported auditor type %T", auditor)
	}
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("persist: encode payload: %w", err)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(envelope{Version: Version, Kind: kind, Payload: raw})
}

// Load reads an auditor snapshot from r and rebuilds the auditor. The
// concrete type matches the envelope kind; assert on the result.
func Load(r io.Reader) (any, Kind, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, "", fmt.Errorf("persist: decode envelope: %w", err)
	}
	if env.Version != Version {
		return nil, "", fmt.Errorf("persist: unsupported snapshot version %d", env.Version)
	}
	switch env.Kind {
	case KindSumFull:
		var s sumfull.Snapshot
		if err := json.Unmarshal(env.Payload, &s); err != nil {
			return nil, env.Kind, fmt.Errorf("persist: decode %s: %w", env.Kind, err)
		}
		a, err := sumfull.Restore(s)
		return a, env.Kind, err
	case KindMaxFull:
		a, err := restoreSynopsis(env.Payload, maxfull.Restore)
		return a, env.Kind, err
	case KindMinFull:
		a, err := restoreSynopsis(env.Payload, minfull.Restore)
		return a, env.Kind, err
	case KindMaxMinFull:
		var s maxminfullSnapshot
		if err := json.Unmarshal(env.Payload, &s); err != nil {
			return nil, env.Kind, fmt.Errorf("persist: decode %s: %w", env.Kind, err)
		}
		a, err := maxminfull.Restore(s)
		return a, env.Kind, err
	case KindMaxDup:
		var s maxdup.Snapshot
		if err := json.Unmarshal(env.Payload, &s); err != nil {
			return nil, env.Kind, fmt.Errorf("persist: decode %s: %w", env.Kind, err)
		}
		a, err := maxdup.Restore(s)
		return a, env.Kind, err
	default:
		return nil, env.Kind, fmt.Errorf("persist: unknown auditor kind %q", env.Kind)
	}
}

func restoreSynopsis[T any](payload json.RawMessage, restore func(synopsisSnapshot) (T, error)) (T, error) {
	var zero T
	var s synopsisSnapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return zero, fmt.Errorf("persist: decode synopsis payload: %w", err)
	}
	return restore(s)
}
