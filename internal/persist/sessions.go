package persist

import (
	"encoding/json"
	"fmt"
	"io"

	"queryaudit/internal/session"
)

// KindSessionLogs names the multi-analyst session-journal snapshot: the
// complete set of per-analyst query/decision logs, from which every
// session's auditor state is rebuilt by replay (simulatable stacks
// only).
const KindSessionLogs Kind = "session-logs"

// sessionLogsPayload is the envelope payload for KindSessionLogs. Epoch
// is the replication cluster epoch at save time (0 for standalone
// deployments and snapshots from before replication existed — the JSON
// field is simply absent there, so old snapshots load unchanged).
type sessionLogsPayload struct {
	Sessions []session.LogSnapshot `json:"sessions"`
	Epoch    uint64                `json:"epoch,omitempty"`
}

// SaveSessions writes every session journal to w under the standard
// versioned envelope (standalone form; epoch 0).
func SaveSessions(w io.Writer, logs []session.LogSnapshot) error {
	return SaveSessionState(w, logs, 0)
}

// SaveSessionState writes every session journal plus the replication
// cluster epoch, so a restarted node rejoins the cluster with the fence
// it last held instead of epoch 0 (which any promoted peer would
// immediately override).
func SaveSessionState(w io.Writer, logs []session.LogSnapshot, epoch uint64) error {
	raw, err := json.Marshal(sessionLogsPayload{Sessions: logs, Epoch: epoch})
	if err != nil {
		return fmt.Errorf("persist: encode session logs: %w", err)
	}
	return json.NewEncoder(w).Encode(envelope{Version: Version, Kind: KindSessionLogs, Payload: raw})
}

// LoadSessions reads a session-journal snapshot from r (discarding any
// stored epoch), validating each journal's structural invariants before
// returning.
func LoadSessions(r io.Reader) ([]session.LogSnapshot, error) {
	logs, _, err := LoadSessionState(r)
	return logs, err
}

// LoadSessionState reads a session-journal snapshot plus the stored
// replication epoch. Each journal's structural invariants — including
// its transcript digest chain, when the snapshot carries digests — are
// validated before returning; replay-time checks (index ranges, auditor
// agreement with logged outcomes) happen in session.Manager.Restore.
func LoadSessionState(r io.Reader) ([]session.LogSnapshot, uint64, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, 0, fmt.Errorf("persist: decode envelope: %w", err)
	}
	if err := env.check(KindSessionLogs); err != nil {
		return nil, 0, err
	}
	var p sessionLogsPayload
	if err := json.Unmarshal(env.Payload, &p); err != nil {
		return nil, 0, fmt.Errorf("persist: decode %s: %w", env.Kind, err)
	}
	seen := make(map[string]bool, len(p.Sessions))
	for _, snap := range p.Sessions {
		if snap.Analyst == "" {
			return nil, 0, fmt.Errorf("persist: session snapshot with empty analyst id")
		}
		if seen[snap.Analyst] {
			return nil, 0, fmt.Errorf("persist: duplicate session snapshot for analyst %q", snap.Analyst)
		}
		seen[snap.Analyst] = true
		if err := snap.Validate(); err != nil {
			return nil, 0, fmt.Errorf("persist: analyst %q: %w", snap.Analyst, err)
		}
	}
	return p.Sessions, p.Epoch, nil
}

// check validates an envelope's version and kind.
func (env envelope) check(want Kind) error {
	if env.Version != Version {
		return fmt.Errorf("persist: unsupported snapshot version %d", env.Version)
	}
	if env.Kind != want {
		return fmt.Errorf("persist: snapshot kind %q, want %q", env.Kind, want)
	}
	return nil
}
