package persist

import (
	"encoding/json"
	"fmt"
	"io"

	"queryaudit/internal/session"
)

// KindSessionLogs names the multi-analyst session-journal snapshot: the
// complete set of per-analyst query/decision logs, from which every
// session's auditor state is rebuilt by replay (simulatable stacks
// only).
const KindSessionLogs Kind = "session-logs"

// sessionLogsPayload is the envelope payload for KindSessionLogs.
type sessionLogsPayload struct {
	Sessions []session.LogSnapshot `json:"sessions"`
}

// SaveSessions writes every session journal to w under the standard
// versioned envelope.
func SaveSessions(w io.Writer, logs []session.LogSnapshot) error {
	raw, err := json.Marshal(sessionLogsPayload{Sessions: logs})
	if err != nil {
		return fmt.Errorf("persist: encode session logs: %w", err)
	}
	return json.NewEncoder(w).Encode(envelope{Version: Version, Kind: KindSessionLogs, Payload: raw})
}

// LoadSessions reads a session-journal snapshot from r, validating each
// journal's structural invariants before returning. Replay-time checks
// (index ranges, auditor agreement with logged outcomes) happen in
// session.Manager.Restore.
func LoadSessions(r io.Reader) ([]session.LogSnapshot, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("persist: decode envelope: %w", err)
	}
	if err := env.check(KindSessionLogs); err != nil {
		return nil, err
	}
	var p sessionLogsPayload
	if err := json.Unmarshal(env.Payload, &p); err != nil {
		return nil, fmt.Errorf("persist: decode %s: %w", env.Kind, err)
	}
	seen := make(map[string]bool, len(p.Sessions))
	for _, snap := range p.Sessions {
		if snap.Analyst == "" {
			return nil, fmt.Errorf("persist: session snapshot with empty analyst id")
		}
		if seen[snap.Analyst] {
			return nil, fmt.Errorf("persist: duplicate session snapshot for analyst %q", snap.Analyst)
		}
		seen[snap.Analyst] = true
		if err := snap.Validate(); err != nil {
			return nil, fmt.Errorf("persist: analyst %q: %w", snap.Analyst, err)
		}
	}
	return p.Sessions, nil
}

// check validates an envelope's version and kind.
func (env envelope) check(want Kind) error {
	if env.Version != Version {
		return fmt.Errorf("persist: unsupported snapshot version %d", env.Version)
	}
	if env.Kind != want {
		return fmt.Errorf("persist: snapshot kind %q, want %q", env.Kind, want)
	}
	return nil
}
