package persist_test

import (
	"bytes"
	"fmt"

	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/persist"
	"queryaudit/internal/query"
)

// Example round-trips a max auditor's trail through a snapshot: the
// restored auditor remembers exactly what was answered and keeps
// denying the same probes.
func Example() {
	a := maxfull.New(3)
	q := query.New(query.Max, 0, 1, 2)
	if d, _ := a.Decide(q); d == 1 {
		a.Record(q, 9)
	}

	var buf bytes.Buffer
	if err := persist.Save(&buf, a); err != nil {
		panic(err)
	}
	restored, kind, err := persist.Load(&buf)
	if err != nil {
		panic(err)
	}
	b := restored.(*maxfull.Auditor)

	probe := query.New(query.Max, 0, 1) // would localize the witness
	d1, _ := a.Decide(probe)
	d2, _ := b.Decide(probe)
	fmt.Println(kind, d1, d2)
	// Output:
	// max-full deny deny
}
