package persist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxdup"
	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/minfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/field"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// driveAuditor runs a random answered history against any auditor.
func driveAuditor(a audit.Auditor, kinds []query.Kind, xs []float64, steps int, seed int64) []query.Query {
	rng := rand.New(rand.NewSource(seed))
	var answered []query.Query
	n := len(xs)
	for s := 0; s < steps; s++ {
		set := randx.SubsetSizeBetween(rng, n, 2, n)
		q := query.Query{Set: query.NewSet(set...), Kind: kinds[rng.Intn(len(kinds))]}
		if d, err := a.Decide(q); err == nil && d == audit.Answer {
			a.Record(q, q.Eval(xs))
			answered = append(answered, q)
		}
	}
	return answered
}

// probeAgreement checks that two auditors decide identically on a probe
// battery.
func probeAgreement(t *testing.T, a, b audit.Auditor, kinds []query.Kind, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < 60; s++ {
		set := randx.SubsetSizeBetween(rng, n, 1, n)
		q := query.Query{Set: query.NewSet(set...), Kind: kinds[rng.Intn(len(kinds))]}
		d1, e1 := a.Decide(q)
		d2, e2 := b.Decide(q)
		if d1 != d2 || (e1 == nil) != (e2 == nil) {
			t.Fatalf("probe %v: original=%v(%v) restored=%v(%v)", q, d1, e1, d2, e2)
		}
	}
}

func roundTrip(t *testing.T, a any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, a); err != nil {
		t.Fatalf("save: %v", err)
	}
	restored, _, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return restored
}

func TestRoundTripSumFull(t *testing.T) {
	const n = 20
	xs := randx.UniformDataset(randx.New(1), n, 0, 1)
	a := sumfull.New(n)
	driveAuditor(a, []query.Kind{query.Sum}, xs, 30, 2)
	a.NoteUpdate(3)
	driveAuditor(a, []query.Kind{query.Sum}, xs, 10, 3)
	b := roundTrip(t, a).(*sumfull.Auditor[gfElem, gfField])
	probeAgreement(t, a, b, []query.Kind{query.Sum}, n, 4)
}

func TestRoundTripMaxFull(t *testing.T) {
	const n = 15
	xs := randx.DuplicateFreeDataset(randx.New(5), n, 0, 1)
	a := maxfull.New(n)
	driveAuditor(a, []query.Kind{query.Max}, xs, 25, 6)
	b := roundTrip(t, a).(*maxfull.Auditor)
	probeAgreement(t, a, b, []query.Kind{query.Max}, n, 7)
}

func TestRoundTripMinFull(t *testing.T) {
	const n = 15
	xs := randx.DuplicateFreeDataset(randx.New(8), n, 0, 1)
	a := minfull.New(n)
	driveAuditor(a, []query.Kind{query.Min}, xs, 25, 9)
	b := roundTrip(t, a).(*minfull.Auditor)
	probeAgreement(t, a, b, []query.Kind{query.Min}, n, 10)
}

func TestRoundTripMaxMinFull(t *testing.T) {
	const n = 12
	xs := randx.DuplicateFreeDataset(randx.New(11), n, 0, 1)
	a := maxminfull.New(n)
	driveAuditor(a, []query.Kind{query.Max, query.Min}, xs, 25, 12)
	b := roundTrip(t, a).(*maxminfull.Auditor)
	probeAgreement(t, a, b, []query.Kind{query.Max, query.Min}, n, 13)
}

func TestRoundTripMaxDup(t *testing.T) {
	const n = 15
	rng := randx.New(14)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(rng.Intn(10)) // duplicates welcome
	}
	a := maxdup.New(n)
	driveAuditor(a, []query.Kind{query.Max}, xs, 25, 15)
	b := roundTrip(t, a).(*maxdup.Auditor)
	probeAgreement(t, a, b, []query.Kind{query.Max}, n, 16)
}

func TestRejectsGarbage(t *testing.T) {
	cases := []string{
		``,
		`{"version":99,"kind":"sum-full","payload":{}}`,
		`{"version":1,"kind":"who-knows","payload":{}}`,
		// Overlapping predicate sets violate the synopsis invariant.
		`{"version":1,"kind":"max-full","payload":{"n":3,"next_id":2,"preds":[
			{"id":0,"set":[0,1],"value":5,"op":0},
			{"id":1,"set":[1,2],"value":7,"op":0}]}}`,
		// Duplicate equality values.
		`{"version":1,"kind":"max-full","payload":{"n":4,"next_id":2,"preds":[
			{"id":0,"set":[0,1],"value":5,"op":0},
			{"id":1,"set":[2,3],"value":5,"op":0}]}}`,
		// Out-of-range element.
		`{"version":1,"kind":"max-dup","payload":{"n":2,"queries":[{"set":[0,9],"answer":3}]}}`,
	}
	for _, raw := range cases {
		if _, _, err := Load(strings.NewReader(raw)); err == nil {
			t.Errorf("garbage accepted: %s", raw)
		}
	}
}

func TestUnsupportedSave(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, 42); err == nil {
		t.Fatal("saving a non-auditor must fail")
	}
}

// Aliases for readability of the generic sum auditor type in tests.
type gfElem = field.Elem61

type gfField = field.GF61
