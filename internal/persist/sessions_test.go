package persist

import (
	"bytes"
	"strings"
	"testing"

	"queryaudit/internal/session"
)

func sampleLogs() []session.LogSnapshot {
	return []session.LogSnapshot{
		{Analyst: "alice", Events: []session.EventSnapshot{
			{Op: "query", Kind: "sum", Indices: []int{0, 1, 2}, Outcome: "answered", Answer: 6},
			{Op: "query", Kind: "sum", Indices: []int{1, 2}, Outcome: "denied"},
			{Op: "update", Index: 1},
			{Op: "query", Kind: "max", Indices: []int{0, 2}, Outcome: "errored"},
		}},
		{Analyst: "bob", Events: nil},
	}
}

// TestSessionLogsRoundTrip: Save → Load preserves every event field.
func TestSessionLogsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	logs := sampleLogs()
	if err := SaveSessions(&buf, logs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSessions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(logs) {
		t.Fatalf("got %d sessions, want %d", len(got), len(logs))
	}
	for i, snap := range got {
		if snap.Analyst != logs[i].Analyst || len(snap.Events) != len(logs[i].Events) {
			t.Fatalf("session %d: %+v vs %+v", i, snap, logs[i])
		}
		for j, ev := range snap.Events {
			want := logs[i].Events[j]
			if ev.Op != want.Op || ev.Kind != want.Kind || ev.Outcome != want.Outcome ||
				ev.Answer != want.Answer || ev.Index != want.Index || len(ev.Indices) != len(want.Indices) {
				t.Fatalf("session %d event %d: %+v vs %+v", i, j, ev, want)
			}
		}
	}
}

// TestLoadSessionsRejectsInvalid: wrong kinds, versions, duplicate or
// empty analysts, and structurally invalid events are all refused.
func TestLoadSessionsRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"wrong kind":    `{"version":1,"kind":"sum-full","payload":{"sessions":[]}}`,
		"wrong version": `{"version":9,"kind":"session-logs","payload":{"sessions":[]}}`,
		"empty analyst": `{"version":1,"kind":"session-logs","payload":{"sessions":[{"analyst":"","events":[]}]}}`,
		"duplicate":     `{"version":1,"kind":"session-logs","payload":{"sessions":[{"analyst":"a"},{"analyst":"a"}]}}`,
		"bad op":        `{"version":1,"kind":"session-logs","payload":{"sessions":[{"analyst":"a","events":[{"op":"zap"}]}]}}`,
		"bad kind":      `{"version":1,"kind":"session-logs","payload":{"sessions":[{"analyst":"a","events":[{"op":"query","kind":"mode","indices":[0],"outcome":"answered"}]}]}}`,
		"bad outcome":   `{"version":1,"kind":"session-logs","payload":{"sessions":[{"analyst":"a","events":[{"op":"query","kind":"sum","indices":[0],"outcome":"maybe"}]}]}}`,
		"empty set":     `{"version":1,"kind":"session-logs","payload":{"sessions":[{"analyst":"a","events":[{"op":"query","kind":"sum","indices":[],"outcome":"answered"}]}]}}`,
	}
	for name, raw := range cases {
		if _, err := LoadSessions(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted invalid snapshot", name)
		}
	}
}
