package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// WriteAtomic writes a snapshot file durably: the payload goes to a
// temporary file in the target's directory, is fsynced, and is renamed
// over the target in one atomic step, after which the directory entry is
// fsynced too. A crash at any point leaves either the old complete file
// or the new complete file — never a truncated half-write, which for an
// audit trail would mean restarting with an amnesiac auditor that has
// forgotten answered queries.
func WriteAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: create temp file: %w", err)
	}
	tmpName := tmp.Name()
	// Clean up the temp file on any failure path.
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("persist: %s %s: %w", step, tmpName, err)
	}
	if err := write(tmp); err != nil {
		return fail("write", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("fsync", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("close", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: rename %s -> %s: %w", tmpName, path, err)
	}
	// Sync the directory so the rename itself survives a crash. The new
	// file is already in place, but reporting success on a failed entry
	// sync would let a crash resurrect the OLD snapshot after callers
	// (journal truncation, digest anchoring) acted on the new one.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("persist: sync dir %s: %w", dir, err)
	}
	return nil
}

// syncDir fsyncs a directory entry. Platforms (and some filesystems)
// that cannot fsync a directory report EINVAL/ENOTSUP; only those are
// tolerated — a real I/O error means the rename may not be durable and
// must surface.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
