// Package sumprob implements the probabilistic (partial-disclosure) sum
// auditor of [Kenthapadi–Mishra–Nissim '05] that this paper's Section 3
// improves upon: data uniform on [0,1]^n, answered sum queries carving
// the consistent-dataset polytope, and a simulatable decision rule that
// estimates — by sampling that polytope — whether answering the new
// query would push any element's interval posterior outside the
// λ-window.
//
// The auditor is deliberately the expensive comparator: every decision
// runs nested hit-and-run sampling over convex polytopes, which is what
// the paper means by its max auditor being "decidedly more efficient".
// BenchmarkProbSumVsMax quantifies the gap.
//
// # Decision hot path
//
// The outer Monte Carlo loop runs on the shared decision scheduler
// (internal/mcpar). All row-dependent factorization work is hoisted out
// of the sample loop: the base polytope's shape is cached ACROSS
// decisions (it changes only when Record appends a row), and the
// extended system's shape — history rows plus the queried row — is built
// once per decision. Each sample then only binds the extended shape to
// its simulated answer: the outer walker's position is an exact feasible
// point of the extended system (the answer is computed from it), so the
// per-sample feasibility search converges in a projection or two, and
// the inner chain starts from an exact conditional draw instead of
// burning in cold. Consecutive decisions additionally reuse the
// posterior chain state: the outer chain of decision t+1 starts where
// decision t's equilibrated chain ended (a deterministic function of the
// decision history, so journal replay reproduces it bit-for-bit).
//
// Every sample draws from a counter-based stream keyed by (decision
// seed, sample index), so the decision is bit-identical at any worker
// count.
package sumprob

import (
	"fmt"
	"math"
	"math/rand"

	"queryaudit/internal/audit"
	"queryaudit/internal/interval"
	"queryaudit/internal/mcpar"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// Params configure the (λ, δ, γ, T) game and the Monte Carlo effort.
type Params struct {
	// Lambda bounds the tolerated posterior/prior ratio drift (0<λ<1).
	Lambda float64
	// Gamma partitions [0,1] into γ intervals.
	Gamma int
	// Delta bounds the attacker's winning probability over T rounds.
	Delta float64
	// T is the number of game rounds.
	T int
	// OuterSamples hypothetical datasets per decision (0 → 12).
	OuterSamples int
	// InnerSamples polytope points per posterior estimate (0 → 200).
	InnerSamples int
	// BurnIn hit-and-run steps before collecting on a COLD chain (0 →
	// 50 + 5·dim). Warm-started chains (posterior reuse across a
	// session's decisions, and the per-sample inner chains, which start
	// from an exact conditional draw) equilibrate with 3·Thin steps.
	BurnIn int
	// Thin steps between collected points (0 → max(4, dim), since the
	// walk's autocorrelation grows with the polytope dimension).
	Thin int
	// Workers caps this auditor's share of the decision scheduler per
	// decision; 0 = GOMAXPROCS, 1 = sequential. Decisions are identical
	// at any worker count for a fixed Seed.
	Workers int
	// Seed drives the auditor's randomness.
	Seed int64
	// AdaptiveAlpha, when positive, arms mcpar's variance-aware adaptive
	// sequential test: a decision stops early once its outcome is pinned
	// with confidence 1-AdaptiveAlpha. Zero (the default) keeps the exact
	// certificates only, which never change a decision.
	AdaptiveAlpha float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Lambda <= 0 || p.Lambda >= 1 {
		return fmt.Errorf("sumprob: lambda must be in (0,1), got %g", p.Lambda)
	}
	if p.Gamma < 1 {
		return fmt.Errorf("sumprob: gamma must be >= 1, got %d", p.Gamma)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("sumprob: delta must be in (0,1), got %g", p.Delta)
	}
	if p.T < 1 {
		return fmt.Errorf("sumprob: T must be >= 1, got %d", p.T)
	}
	return nil
}

func (p Params) outer() int {
	if p.OuterSamples > 0 {
		return p.OuterSamples
	}
	return 12
}

func (p Params) inner() int {
	if p.InnerSamples > 0 {
		return p.InnerSamples
	}
	return 200
}

func (p Params) burnIn(dim int) int {
	if p.BurnIn > 0 {
		return p.BurnIn
	}
	return 50 + 5*dim
}

func (p Params) thin(dim int) int {
	if p.Thin > 0 {
		return p.Thin
	}
	if dim > 4 {
		return dim
	}
	return 4
}

// Auditor is the [21]-style probabilistic sum auditor.
type Auditor struct {
	n      int
	params Params
	part   interval.Partition
	window interval.RatioWindow
	rows   [][]float64
	b      []float64
	// decisions counts Decide calls; each decision derives its own base
	// seed from (params.Seed, decisions) so samples are fresh per decision
	// yet bit-reproducible across runs and worker counts.
	decisions uint64
	// mc observes per-decision Monte Carlo accounting (may be nil).
	mc            mcpar.Observer
	sched         *mcpar.Scheduler
	denyThreshold float64

	// Base-system cache, valid while len(rows) == baseRows. Every field
	// is a pure function of the Decide/Record history (never of wall
	// time or worker count), so journal replay rebuilds it exactly.
	baseShape *shape
	basePoly  *polytope
	baseRows  int
	// lastX is the end of the previous decision's equilibrated outer
	// chain — the posterior state the next decision's chains resume from.
	lastX []float64
}

// New returns an auditor over n records uniform on [0,1].
func New(n int, params Params) (*Auditor, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Auditor{
		n:             n,
		params:        params,
		part:          interval.NewPartition(0, 1, params.Gamma),
		window:        interval.RatioWindow{Lambda: params.Lambda},
		denyThreshold: params.Delta / (2 * float64(params.T)),
		baseRows:      -1,
	}, nil
}

// SetWorkers adjusts the per-decision worker cap (0 = GOMAXPROCS).
func (a *Auditor) SetWorkers(n int) { a.params.Workers = n }

// SetMCObserver installs the per-decision Monte Carlo observer (nil
// disables).
func (a *Auditor) SetMCObserver(o mcpar.Observer) { a.mc = o }

// SetScheduler points the auditor's decisions at a shared assist pool
// (nil selects mcpar.Default()).
func (a *Auditor) SetScheduler(s *mcpar.Scheduler) { a.sched = s }

// Name implements audit.Auditor.
func (a *Auditor) Name() string { return "sum-partial-disclosure" }

// N returns the number of records.
func (a *Auditor) N() int { return a.n }

// rowOf converts a query set into a 0/1 constraint row.
func (a *Auditor) rowOf(s query.Set) []float64 {
	row := make([]float64, a.n)
	for _, i := range s {
		row[i] = 1
	}
	return row
}

// safeForExt estimates, by sampling the pre-factored extended system
// bound to the simulated answer vector extB, whether every element's
// interval posterior stays inside the λ-window. start must be a feasible
// point of the extended system — the outer walker's position, whose
// answer entry was computed from it — which makes the instantiation a
// projection polish and lets the chain skip the cold burn-in: start is
// an exact draw from the extended polytope's distribution.
func (a *Auditor) safeForExt(sh *shape, extB, start []float64, rng *rand.Rand, sc *decideScratch) (bool, error) {
	if err := sh.instantiateInto(&sc.ext, extB, start, rng); err != nil {
		return false, err
	}
	if sc.ext.dim() == 0 {
		// Fully determined dataset: every posterior is a point mass.
		return false, nil
	}
	dim := sc.ext.dim()
	thin := a.params.thin(dim)
	steps := a.params.inner() * thin
	gamma := a.params.Gamma
	// Batch-means accounting: the chord stream is autocorrelated, so the
	// Monte Carlo error of each cell estimate is taken from the spread
	// of per-batch means, not from a binomial formula.
	const batches = 8
	perBatch := steps / batches
	if perBatch < 1 {
		perBatch = 1
	}
	need := batches * a.n * gamma
	if cap(sc.sums) < need {
		sc.sums = make([]float64, need)
	}
	sums := sc.sums[:need]
	for i := range sums {
		sums[i] = 0
	}
	if cap(sc.used) < batches {
		sc.used = make([]int, batches)
	}
	used := sc.used[:batches]
	for i := range used {
		used[i] = 0
	}
	sc.extW.rebase(&sc.ext)
	w := &sc.extW
	for s := 0; s < 3*thin; s++ {
		w.step(rng)
	}
	// Rao–Blackwellized chord estimator: every step contributes the exact
	// conditional cell probabilities of each coordinate along its chord.
	cellW := a.part.Width()
	stride := a.n * gamma
	for s := 0; s < batches*perBatch; s++ {
		bi := s / perBatch
		x, d, lo, hi, ok := w.stepChord(rng)
		if !ok {
			continue
		}
		used[bi]++
		cb := sums[bi*stride : (bi+1)*stride]
		for i := 0; i < a.n; i++ {
			aEnd := x[i] + lo*d[i]
			bEnd := x[i] + hi*d[i]
			if aEnd > bEnd {
				aEnd, bEnd = bEnd, aEnd
			}
			if bEnd-aEnd < 1e-12 {
				j := a.part.CellIndex(x[i])
				if j >= 1 {
					cb[i*gamma+j-1]++
				}
				continue
			}
			inv := 1 / (bEnd - aEnd)
			// Only the cells the segment overlaps contribute; chord
			// endpoints sit in [0,1] up to clamping slack, so the index
			// window needs clamping, not the arithmetic.
			jLo := int(aEnd / cellW)
			if jLo < 0 {
				jLo = 0
			}
			jHi := int(bEnd / cellW)
			if jHi >= gamma {
				jHi = gamma - 1
			}
			for j := jLo; j <= jHi; j++ {
				oLo := float64(j) * cellW
				oHi := oLo + cellW
				if aEnd > oLo {
					oLo = aEnd
				}
				if bEnd < oHi {
					oHi = bEnd
				}
				if oHi > oLo {
					cb[i*gamma+j] += (oHi - oLo) * inv
				}
			}
		}
	}
	// Declare a cell unsafe only when the breach is statistically clear:
	// the batch-mean must sit more than three batch standard errors
	// outside the window (the Monte Carlo analogue of [21]'s
	// approximation slack, honest about chain autocorrelation).
	prior := a.part.Prior()
	lowEdge := (1 - a.params.Lambda) * prior
	highEdge := prior / (1 - a.params.Lambda)
	for i := 0; i < a.n; i++ {
		for j := 0; j < gamma; j++ {
			mean, se := batchStats(sums, used, stride, i*gamma+j)
			if se < 0 {
				return false, nil // no usable samples
			}
			if mean < lowEdge-3*se || mean > highEdge+3*se {
				return false, nil
			}
		}
	}
	return true, nil
}

// batchStats returns the across-batch mean and standard error of the
// cell at offset off (flat batches×stride layout); se is negative when
// no batch collected samples.
func batchStats(sums []float64, used []int, stride, off int) (mean, se float64) {
	cnt := 0
	for b := range used {
		if used[b] == 0 {
			continue
		}
		mean += sums[b*stride+off] / float64(used[b])
		cnt++
	}
	if cnt == 0 {
		return 0, -1
	}
	mean /= float64(cnt)
	if cnt < 2 {
		return mean, 0.5 // single batch: no spread information, max slack
	}
	varSum := 0.0
	for b := range used {
		if used[b] == 0 {
			continue
		}
		m := sums[b*stride+off]/float64(used[b]) - mean
		varSum += m * m
	}
	se = math.Sqrt(varSum / float64(cnt-1) / float64(cnt))
	return mean, se
}

// Decide implements audit.Auditor: sample consistent datasets, simulate
// the answer each would give, and deny when too many simulated answers
// would breach the λ-window.
func (a *Auditor) Decide(q query.Query) (audit.Decision, error) {
	if q.Kind != query.Sum {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("sumprob: empty query set")
	}
	for _, i := range q.Set {
		if i < 0 || i >= a.n {
			return audit.Deny, fmt.Errorf("sumprob: index %d out of range", i)
		}
	}
	// Decision-level randomness splits into two decorrelated streams: one
	// seeds the per-sample streams inside the engine, the other drives the
	// one-off setup work (cold feasible-point search, chain-state advance).
	decSeed := randx.DeriveSeed(a.params.Seed, a.decisions)
	a.decisions++
	voteSeed := randx.DeriveSeed(decSeed, 0)
	setupRng := randx.Stream(decSeed, 1)

	// Base system: rebuilt only when Record appended a row since the last
	// decision; otherwise this decision reuses the cached factorization
	// AND the previous decision's equilibrated chain state.
	warm := a.baseShape != nil && a.baseRows == len(a.rows)
	if !warm {
		sh, err := newShape(a.rows, a.n)
		if err != nil {
			return audit.Deny, err
		}
		p, err := sh.instantiate(a.b, nil, setupRng)
		if err != nil {
			return audit.Deny, err
		}
		a.baseShape, a.basePoly, a.baseRows = sh, p, len(a.rows)
		a.lastX = append(a.lastX[:0], p.x0...)
	}
	base := a.basePoly

	// Extended system = history rows + the queried row, factored ONCE per
	// decision; each sample only re-binds its answer entry.
	newRow := a.rowOf(q.Set)
	extRows := append(append([][]float64{}, a.rows...), newRow)
	extShape, err := newShape(extRows, a.n)
	if err != nil {
		return audit.Deny, err
	}

	budget := a.params.outer()
	barrier := mcpar.DenyBarrier(budget, a.denyThreshold)
	dim := base.dim()
	thin := a.params.thin(dim)
	burn := 3 * thin
	if !warm {
		burn = a.params.burnIn(dim)
	}
	startX := a.lastX // read-only across workers during the vote
	out := mcpar.Vote(
		mcpar.Config{
			Workers:       a.params.Workers,
			Seed:          voteSeed,
			Observer:      a.mc,
			Sched:         a.sched,
			AdaptiveAlpha: a.params.AdaptiveAlpha,
		},
		budget, barrier,
		func() *decideScratch {
			sc := &decideScratch{
				w:    base.newWalker(),
				extB: make([]float64, len(a.b)+1),
			}
			return sc
		},
		func(_ int, rng *rand.Rand, sc *decideScratch) bool {
			// Independent chain per sample: resume from the session's
			// posterior state, equilibrate, and read one hypothetical
			// dataset.
			sc.w.resetTo(startX)
			for t := 0; t < burn+3*thin; t++ {
				sc.w.step(rng)
			}
			x := sc.w.point()
			ans := 0.0
			for _, i := range q.Set {
				ans += x[i]
			}
			copy(sc.extB, a.b)
			sc.extB[len(a.b)] = ans
			ok, serr := a.safeForExt(extShape, sc.extB, x, rng, sc)
			return serr != nil || !ok
		})

	// Advance the shared chain state for the next decision: equilibrate a
	// fresh stretch from the current state with the setup stream. Pure
	// function of the decision history — replay lands on the same point.
	{
		w := base.newWalker()
		w.resetTo(a.lastX)
		for t := 0; t < 3*thin; t++ {
			w.step(setupRng)
		}
		a.lastX = append(a.lastX[:0], w.point()...)
	}

	if out.Exceeded {
		return audit.Deny, nil
	}
	return audit.Answer, nil
}

// decideScratch is the per-lane reusable state of Decide: a hit-and-run
// walker over the shared base polytope, the extended answer vector, a
// reusable extended-system instance with its own walker, and the flat
// batch-means accumulators of the inner estimator.
type decideScratch struct {
	w    *walker
	extB []float64
	ext  polytope
	extW walker
	sums []float64
	used []int
}

// Record implements audit.Auditor. Appending a row invalidates the
// cached base factorization; the next Decide rebuilds it (and restarts
// its chains cold).
func (a *Auditor) Record(q query.Query, answer float64) {
	a.rows = append(a.rows, a.rowOf(q.Set))
	a.b = append(a.b, answer)
}
