// Package sumprob implements the probabilistic (partial-disclosure) sum
// auditor of [Kenthapadi–Mishra–Nissim '05] that this paper's Section 3
// improves upon: data uniform on [0,1]^n, answered sum queries carving
// the consistent-dataset polytope, and a simulatable decision rule that
// estimates — by sampling that polytope — whether answering the new
// query would push any element's interval posterior outside the
// λ-window.
//
// The auditor is deliberately the expensive comparator: every decision
// runs nested hit-and-run sampling over convex polytopes, which is what
// the paper means by its max auditor being "decidedly more efficient".
// BenchmarkProbSumVsMax quantifies the gap.
//
// The outer Monte Carlo loop runs on the shared parallel engine
// (internal/mcpar): the base polytope is built once per decision and
// shared read-only, each worker keeps a reusable hit-and-run walker that
// restarts from the feasible origin for every sample, and every sample
// draws from a counter-based stream keyed by (decision seed, sample
// index) so the decision is bit-identical at any worker count. Restarting
// the chain per sample (burn-in + thinning each time) makes the outer
// draws independent — a statistical upgrade over the former single
// sequential chain — at a per-sample cost the pool absorbs.
package sumprob

import (
	"fmt"
	"math"
	"math/rand"

	"queryaudit/internal/audit"
	"queryaudit/internal/interval"
	"queryaudit/internal/mcpar"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// Params configure the (λ, δ, γ, T) game and the Monte Carlo effort.
type Params struct {
	// Lambda bounds the tolerated posterior/prior ratio drift (0<λ<1).
	Lambda float64
	// Gamma partitions [0,1] into γ intervals.
	Gamma int
	// Delta bounds the attacker's winning probability over T rounds.
	Delta float64
	// T is the number of game rounds.
	T int
	// OuterSamples hypothetical datasets per decision (0 → 12).
	OuterSamples int
	// InnerSamples polytope points per posterior estimate (0 → 200).
	InnerSamples int
	// BurnIn hit-and-run steps before collecting (0 → 50 + 5·dim).
	BurnIn int
	// Thin steps between collected points (0 → max(4, dim), since the
	// walk's autocorrelation grows with the polytope dimension).
	Thin int
	// Workers bounds the parallel Monte Carlo pool per decision;
	// 0 = GOMAXPROCS, 1 = sequential. Decisions are identical at any
	// worker count for a fixed Seed.
	Workers int
	// Seed drives the auditor's randomness.
	Seed int64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Lambda <= 0 || p.Lambda >= 1 {
		return fmt.Errorf("sumprob: lambda must be in (0,1), got %g", p.Lambda)
	}
	if p.Gamma < 1 {
		return fmt.Errorf("sumprob: gamma must be >= 1, got %d", p.Gamma)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("sumprob: delta must be in (0,1), got %g", p.Delta)
	}
	if p.T < 1 {
		return fmt.Errorf("sumprob: T must be >= 1, got %d", p.T)
	}
	return nil
}

func (p Params) outer() int {
	if p.OuterSamples > 0 {
		return p.OuterSamples
	}
	return 12
}

func (p Params) inner() int {
	if p.InnerSamples > 0 {
		return p.InnerSamples
	}
	return 200
}

func (p Params) burnIn(dim int) int {
	if p.BurnIn > 0 {
		return p.BurnIn
	}
	return 50 + 5*dim
}

func (p Params) thin(dim int) int {
	if p.Thin > 0 {
		return p.Thin
	}
	if dim > 4 {
		return dim
	}
	return 4
}

// Auditor is the [21]-style probabilistic sum auditor.
type Auditor struct {
	n      int
	params Params
	part   interval.Partition
	window interval.RatioWindow
	rows   [][]float64
	b      []float64
	// decisions counts Decide calls; each decision derives its own base
	// seed from (params.Seed, decisions) so samples are fresh per decision
	// yet bit-reproducible across runs and worker counts.
	decisions uint64
	// mc observes per-decision Monte Carlo accounting (may be nil).
	mc            mcpar.Observer
	denyThreshold float64
}

// New returns an auditor over n records uniform on [0,1].
func New(n int, params Params) (*Auditor, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Auditor{
		n:             n,
		params:        params,
		part:          interval.NewPartition(0, 1, params.Gamma),
		window:        interval.RatioWindow{Lambda: params.Lambda},
		denyThreshold: params.Delta / (2 * float64(params.T)),
	}, nil
}

// SetWorkers adjusts the Monte Carlo pool size (0 = GOMAXPROCS).
func (a *Auditor) SetWorkers(n int) { a.params.Workers = n }

// SetMCObserver installs the per-decision Monte Carlo observer (nil
// disables).
func (a *Auditor) SetMCObserver(o mcpar.Observer) { a.mc = o }

// Name implements audit.Auditor.
func (a *Auditor) Name() string { return "sum-partial-disclosure" }

// N returns the number of records.
func (a *Auditor) N() int { return a.n }

// rowOf converts a query set into a 0/1 constraint row.
func (a *Auditor) rowOf(s query.Set) []float64 {
	row := make([]float64, a.n)
	for _, i := range s {
		row[i] = 1
	}
	return row
}

// safeForSystem estimates, by polytope sampling, whether every element's
// interval posterior stays inside the λ-window for the given system,
// drawing all randomness from rng.
func (a *Auditor) safeForSystem(rows [][]float64, b []float64, rng *rand.Rand) (bool, error) {
	p, err := newPolytope(rows, b, a.n, rng)
	if err != nil {
		return false, err
	}
	if p.dim() == 0 {
		// Fully determined dataset: every posterior is a point mass.
		return false, nil
	}
	steps := a.params.inner() * a.params.thin(p.dim())
	gamma := a.params.Gamma
	// Batch-means accounting: the chord stream is autocorrelated, so the
	// Monte Carlo error of each cell estimate is taken from the spread
	// of per-batch means, not from a binomial formula.
	const batches = 8
	perBatch := steps / batches
	if perBatch < 1 {
		perBatch = 1
	}
	sums := make([][][]float64, batches)
	for b := range sums {
		sums[b] = make([][]float64, a.n)
		for i := range sums[b] {
			sums[b][i] = make([]float64, gamma)
		}
	}
	w := p.newWalker()
	for s := 0; s < a.params.burnIn(p.dim()); s++ {
		w.step(rng)
	}
	// Rao–Blackwellized chord estimator: every step contributes the exact
	// conditional cell probabilities of each coordinate along its chord.
	cellW := a.part.Width()
	usedPer := make([]int, batches)
	for s := 0; s < batches*perBatch; s++ {
		b := s / perBatch
		x, d, lo, hi, ok := w.stepChord(rng)
		if !ok {
			continue
		}
		usedPer[b]++
		cb := sums[b]
		for i := 0; i < a.n; i++ {
			aEnd := x[i] + lo*d[i]
			bEnd := x[i] + hi*d[i]
			if aEnd > bEnd {
				aEnd, bEnd = bEnd, aEnd
			}
			if bEnd-aEnd < 1e-12 {
				j := a.part.CellIndex(x[i])
				if j >= 1 {
					cb[i][j-1]++
				}
				continue
			}
			inv := 1 / (bEnd - aEnd)
			for j := 0; j < gamma; j++ {
				cLo, cHi := float64(j)*cellW, float64(j+1)*cellW
				o := math.Min(bEnd, cHi) - math.Max(aEnd, cLo)
				if o > 0 {
					cb[i][j] += o * inv
				}
			}
		}
	}
	// Declare a cell unsafe only when the breach is statistically clear:
	// the batch-mean must sit more than three batch standard errors
	// outside the window (the Monte Carlo analogue of [21]'s
	// approximation slack, honest about chain autocorrelation).
	prior := a.part.Prior()
	lowEdge := (1 - a.params.Lambda) * prior
	highEdge := prior / (1 - a.params.Lambda)
	for i := 0; i < a.n; i++ {
		for j := 0; j < gamma; j++ {
			mean, se := batchStats(sums, usedPer, i, j)
			if se < 0 {
				return false, nil // no usable samples
			}
			if mean < lowEdge-3*se || mean > highEdge+3*se {
				return false, nil
			}
		}
	}
	return true, nil
}

// batchStats returns the across-batch mean and standard error of cell
// (i, j); se is negative when no batch collected samples.
func batchStats(sums [][][]float64, usedPer []int, i, j int) (mean, se float64) {
	var ms []float64
	for b := range sums {
		if usedPer[b] == 0 {
			continue
		}
		ms = append(ms, sums[b][i][j]/float64(usedPer[b]))
	}
	if len(ms) == 0 {
		return 0, -1
	}
	for _, m := range ms {
		mean += m
	}
	mean /= float64(len(ms))
	if len(ms) < 2 {
		return mean, 0.5 // single batch: no spread information, max slack
	}
	varSum := 0.0
	for _, m := range ms {
		varSum += (m - mean) * (m - mean)
	}
	se = math.Sqrt(varSum / float64(len(ms)-1) / float64(len(ms)))
	return mean, se
}

// Decide implements audit.Auditor: sample consistent datasets, simulate
// the answer each would give, and deny when too many simulated answers
// would breach the λ-window.
func (a *Auditor) Decide(q query.Query) (audit.Decision, error) {
	if q.Kind != query.Sum {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("sumprob: empty query set")
	}
	for _, i := range q.Set {
		if i < 0 || i >= a.n {
			return audit.Deny, fmt.Errorf("sumprob: index %d out of range", i)
		}
	}
	// Decision-level randomness splits into two decorrelated streams: one
	// seeds the per-sample streams inside the engine, the other drives the
	// one-off feasible-point search of the shared base polytope.
	decSeed := randx.DeriveSeed(a.params.Seed, a.decisions)
	a.decisions++
	voteSeed := randx.DeriveSeed(decSeed, 0)
	setupRng := randx.Stream(decSeed, 1)
	base, err := newPolytope(a.rows, a.b, a.n, setupRng)
	if err != nil {
		return audit.Deny, err
	}
	newRow := a.rowOf(q.Set)
	extRows := append(append([][]float64{}, a.rows...), newRow)
	budget := a.params.outer()
	barrier := mcpar.DenyBarrier(budget, a.denyThreshold)
	burn := a.params.burnIn(base.dim())
	thin := a.params.thin(base.dim())
	out := mcpar.Vote(
		mcpar.Config{Workers: a.params.Workers, Seed: voteSeed, Observer: a.mc},
		budget, barrier,
		func() *decideScratch {
			return &decideScratch{
				w:    base.newWalker(),
				extB: make([]float64, len(a.b)+1),
			}
		},
		func(_ int, rng *rand.Rand, sc *decideScratch) bool {
			// Independent chain per sample: restart from the feasible
			// origin, burn in, thin, and read one hypothetical dataset.
			sc.w.reset()
			for t := 0; t < burn+3*thin; t++ {
				sc.w.step(rng)
			}
			x := sc.w.point()
			ans := 0.0
			for _, i := range q.Set {
				ans += x[i]
			}
			copy(sc.extB, a.b)
			sc.extB[len(a.b)] = ans
			ok, serr := a.safeForSystem(extRows, sc.extB, rng)
			return serr != nil || !ok
		})
	if out.Exceeded {
		return audit.Deny, nil
	}
	return audit.Answer, nil
}

// decideScratch is the per-worker reusable state of Decide: a hit-and-run
// walker over the shared base polytope and the extended answer vector.
type decideScratch struct {
	w    *walker
	extB []float64
}

// Record implements audit.Auditor.
func (a *Auditor) Record(q query.Query, answer float64) {
	a.rows = append(a.rows, a.rowOf(q.Set))
	a.b = append(a.b, answer)
}
