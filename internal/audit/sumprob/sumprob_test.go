package sumprob

import (
	"math"
	"math/rand"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

func params() Params {
	return Params{
		Lambda: 0.5, Gamma: 4, Delta: 0.2, T: 10,
		OuterSamples: 8, InnerSamples: 150, Seed: 1,
	}
}

// TestPolytopeSamplerUnconstrained: with no constraints the sampler must
// cover the unit cube uniformly.
func TestPolytopeSamplerUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := newPolytope(nil, nil, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.dim() != 3 {
		t.Fatalf("dim = %d", p.dim())
	}
	w := p.newWalker()
	for i := 0; i < 100; i++ {
		w.step(rng)
	}
	var mean [3]float64
	const samples = 20000
	for s := 0; s < samples; s++ {
		w.step(rng)
		x := w.point()
		for j := range mean {
			mean[j] += x[j]
		}
	}
	for j := range mean {
		m := mean[j] / samples
		if math.Abs(m-0.5) > 0.03 {
			t.Fatalf("coordinate %d mean %g, want ≈ 0.5", j, m)
		}
	}
}

// TestPolytopeSamplerConstrained: x0+x1 = 1 over [0,1]² concentrates on
// the line segment; x0 uniform on [0,1].
func TestPolytopeSamplerConstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, err := newPolytope([][]float64{{1, 1}}, []float64{1}, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.dim() != 1 {
		t.Fatalf("dim = %d, want 1", p.dim())
	}
	w := p.newWalker()
	for i := 0; i < 50; i++ {
		w.step(rng)
	}
	var mean, meanSq float64
	const samples = 20000
	for s := 0; s < samples; s++ {
		w.step(rng)
		x := w.point()
		if math.Abs(x[0]+x[1]-1) > 1e-6 {
			t.Fatalf("constraint violated: %v", x)
		}
		mean += x[0]
		meanSq += x[0] * x[0]
	}
	mean /= samples
	meanSq /= samples
	if math.Abs(mean-0.5) > 0.03 {
		t.Fatalf("x0 mean %g, want 0.5", mean)
	}
	// Var of U[0,1] is 1/12 ≈ 0.0833.
	if v := meanSq - mean*mean; math.Abs(v-1.0/12) > 0.015 {
		t.Fatalf("x0 variance %g, want ≈ 1/12", v)
	}
}

// TestPolytopeInfeasible: contradictory constraints are rejected.
func TestPolytopeInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	_, err := newPolytope([][]float64{{1, 1}, {1, 1}}, []float64{1, 1.5}, 2, rng)
	if err == nil {
		t.Fatal("contradictory answers must be infeasible")
	}
	// Out-of-box sums too: x0+x1 = 3 over [0,1]².
	_, err = newPolytope([][]float64{{1, 1}}, []float64{3}, 2, rng)
	if err == nil {
		t.Fatal("out-of-box sum must be infeasible")
	}
}

// TestSingletonDenied: a one-element sum pins its element.
func TestSingletonDenied(t *testing.T) {
	a, err := New(12, params())
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := a.Decide(query.New(query.Sum, 3)); d != audit.Deny {
		t.Fatal("singleton must be denied")
	}
}

// TestBroadSumAnswered: for a large enough table the whole-table sum
// moves no individual posterior appreciably (the tilt of the conditional
// decays as e^{O(1/√n)}; at small n whole-table sums genuinely breach
// partial disclosure — see TestSmallTableSumDenied).
func TestBroadSumAnswered(t *testing.T) {
	n := 32
	p := params()
	p.Lambda = 0.6
	p.InnerSamples = 300
	a, err := New(n, p)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if d, derr := a.Decide(query.New(query.Sum, all...)); derr != nil || d != audit.Answer {
		t.Fatalf("whole-table sum should be answered: %v %v", d, derr)
	}
}

// TestSmallTableSumDenied: with few records even the total leaks — a
// typical answer shifts every element's conditional enough to leave the
// λ-window, so the simulatable auditor denies.
func TestSmallTableSumDenied(t *testing.T) {
	n := 8
	p := params()
	p.Lambda = 0.3 // tighter window makes the breach unambiguous
	a, err := New(n, p)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := a.Decide(query.New(query.Sum, 0, 1, 2, 3, 4, 5, 6, 7)); d != audit.Deny {
		t.Fatal("small-table total should be denied under a tight window")
	}
}

// TestComplementAttackDenied: after the total is answered, an
// (n−1)-subset sum would localize the remaining element.
func TestComplementAttackDenied(t *testing.T) {
	n := 32
	p := params()
	p.Lambda = 0.6
	p.InnerSamples = 300
	a, err := New(n, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(5)
	xs := randx.UniformDataset(rng, n, 0, 1)
	allIdx := make([]int, n)
	for i := range allIdx {
		allIdx[i] = i
	}
	all := query.New(query.Sum, allIdx...)
	if d, _ := a.Decide(all); d != audit.Answer {
		t.Fatal("whole-table sum should be answered at n=32, λ=0.6")
	}
	a.Record(all, all.Eval(xs))
	comp := query.New(query.Sum, allIdx[1:]...)
	if d, _ := a.Decide(comp); d != audit.Deny {
		t.Fatal("complement sum must be denied: it pins x0")
	}
}

// TestSimulatableAgreement: decisions depend only on history and seed.
func TestSimulatableAgreement(t *testing.T) {
	n := 16
	a1, _ := New(n, params())
	a2, _ := New(n, params())
	rng := randx.New(6)
	for step := 0; step < 3; step++ {
		set := randx.SubsetSizeBetween(rng, n, 6, n)
		q := query.New(query.Sum, set...)
		d1, _ := a1.Decide(q)
		d2, _ := a2.Decide(q)
		if d1 != d2 {
			t.Fatalf("step %d: decisions diverged", step)
		}
		if d1 == audit.Answer {
			ans := float64(len(set)) * 0.5
			a1.Record(q, ans)
			a2.Record(q, ans)
		}
	}
}
