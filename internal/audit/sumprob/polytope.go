package sumprob

// Geometry support: the set of datasets consistent with a history of
// answered sum queries is the polytope
//
//	P = { x ∈ [0,1]^n : A x = b },
//
// with A the 0/1 matrix of (independent) query vectors. Sampling
// uniformly from P is what makes probabilistic sum auditing expensive —
// the paper's Section 3.1 remarks that its max auditor "is decidedly
// more efficient than the probabilistic sum auditor of [21] which needs
// to estimate volumes of convex polytopes"; this package exists to make
// that comparison concrete.
//
// The sampler is textbook hit-and-run restricted to the affine subspace:
// parameterize x = x₀ + N z with N an orthonormal basis of null(A), walk
// in z-space, and intersect each random direction with the box
// constraints. A feasible starting point comes from alternating
// projections (POCS) between the affine subspace and the box.

import (
	"errors"
	"math"
	"math/rand"
)

// ErrInfeasible reports an empty polytope (inconsistent history).
var ErrInfeasible = errors.New("sumprob: constraint polytope is empty")

// polytope is the sampling workspace for one constraint system.
type polytope struct {
	n int
	// rows are linearly independent 0/1 query vectors; b their answers.
	rows [][]float64
	b    []float64
	// basis is an orthonormal basis of null(rows) (k vectors of dim n).
	basis [][]float64
	// chol is the Cholesky factor of A·Aᵀ for affine projection.
	chol [][]float64
	// x0 is a feasible point of P (after newPolytope succeeds).
	x0 []float64
}

const (
	pivotTol = 1e-9
	boxTol   = 1e-7
)

// newPolytope builds the workspace from a full (possibly dependent) set
// of constraints, keeping an independent subset, and finds a feasible
// point. rng drives the interior search.
func newPolytope(all [][]float64, b []float64, n int, rng *rand.Rand) (*polytope, error) {
	p := &polytope{n: n}
	// Select independent rows by incremental elimination on copies.
	work := make([][]float64, 0, len(all))
	for r, row := range all {
		cand := append([]float64(nil), row...)
		candB := b[r]
		for i, w := range work {
			pv := pivotIndex(w)
			if pv < 0 {
				continue
			}
			f := cand[pv] / w[pv]
			if f != 0 { //auditlint:allow floateq skip-zero fast path; any nonzero factor must be applied exactly
				for j := range cand {
					cand[j] -= f * w[j]
				}
				candB -= f * p.b[i]
			}
		}
		if maxAbs(cand) <= pivotTol {
			// Dependent: consistency requires the residual answer ≈ 0.
			if math.Abs(candB) > 1e-6 {
				return nil, ErrInfeasible
			}
			continue
		}
		work = append(work, cand)
		p.rows = append(p.rows, append([]float64(nil), row...))
		p.b = append(p.b, b[r])
	}
	p.buildNullBasis(work)
	if err := p.buildCholesky(); err != nil {
		return nil, err
	}
	x, err := p.feasiblePoint(rng)
	if err != nil {
		return nil, err
	}
	p.x0 = x
	return p, nil
}

func pivotIndex(row []float64) int {
	best, idx := pivotTol, -1
	for j, v := range row {
		if math.Abs(v) > best {
			best, idx = math.Abs(v), j
		}
	}
	return idx
}

func maxAbs(row []float64) float64 {
	m := 0.0
	for _, v := range row {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// buildNullBasis computes an orthonormal basis of the null space of the
// eliminated rows via free-column parameterization + Gram–Schmidt.
func (p *polytope) buildNullBasis(work [][]float64) {
	// Reduce `work` to RREF-ish form with recorded pivots.
	type pivoted struct {
		row []float64
		col int
	}
	var red []pivoted
	for _, w := range work {
		row := append([]float64(nil), w...)
		for _, r := range red {
			f := row[r.col] / r.row[r.col]
			if f != 0 { //auditlint:allow floateq skip-zero fast path; any nonzero factor must be applied exactly
				for j := range row {
					row[j] -= f * r.row[j]
				}
			}
		}
		pv := pivotIndex(row)
		if pv < 0 {
			continue
		}
		red = append(red, pivoted{row: row, col: pv})
	}
	// Back-substitute to clear pivot columns above.
	for i := len(red) - 1; i >= 0; i-- {
		for k := 0; k < i; k++ {
			f := red[k].row[red[i].col] / red[i].row[red[i].col]
			if f != 0 { //auditlint:allow floateq skip-zero fast path; any nonzero factor must be applied exactly
				for j := range red[k].row {
					red[k].row[j] -= f * red[i].row[j]
				}
			}
		}
	}
	isPivot := make([]bool, p.n)
	for _, r := range red {
		isPivot[r.col] = true
	}
	var raw [][]float64
	for free := 0; free < p.n; free++ {
		if isPivot[free] {
			continue
		}
		v := make([]float64, p.n)
		v[free] = 1
		for _, r := range red {
			v[r.col] = -r.row[free] / r.row[r.col]
		}
		raw = append(raw, v)
	}
	// Modified Gram–Schmidt.
	var basis [][]float64
	for _, v := range raw {
		w := append([]float64(nil), v...)
		for _, u := range basis {
			d := dot(w, u)
			for j := range w {
				w[j] -= d * u[j]
			}
		}
		nrm := math.Sqrt(dot(w, w))
		if nrm > pivotTol {
			for j := range w {
				w[j] /= nrm
			}
			basis = append(basis, w)
		}
	}
	p.basis = basis
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// buildCholesky factors A·Aᵀ (SPD for independent rows).
func (p *polytope) buildCholesky() error {
	m := len(p.rows)
	g := make([][]float64, m)
	for i := range g {
		g[i] = make([]float64, m)
		for j := range g[i] {
			g[i][j] = dot(p.rows[i], p.rows[j])
		}
	}
	l := make([][]float64, m)
	for i := range l {
		l[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			s := g[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			if i == j {
				if s <= pivotTol {
					return errors.New("sumprob: gram matrix not positive definite")
				}
				l[i][i] = math.Sqrt(s)
			} else {
				l[i][j] = s / l[j][j]
			}
		}
	}
	p.chol = l
	return nil
}

// solveGram solves (A·Aᵀ) w = r via the Cholesky factor.
func (p *polytope) solveGram(r []float64) []float64 {
	m := len(r)
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		s := r[i]
		for k := 0; k < i; k++ {
			s -= p.chol[i][k] * y[k]
		}
		y[i] = s / p.chol[i][i]
	}
	w := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < m; k++ {
			s -= p.chol[k][i] * w[k]
		}
		w[i] = s / p.chol[i][i]
	}
	return w
}

// projectAffine maps x to the nearest point of {Ax = b}.
func (p *polytope) projectAffine(x []float64) {
	if len(p.rows) == 0 {
		return
	}
	r := make([]float64, len(p.rows))
	for i, row := range p.rows {
		r[i] = dot(row, x) - p.b[i]
	}
	w := p.solveGram(r)
	for i, row := range p.rows {
		for j := range x {
			x[j] -= w[i] * row[j]
		}
	}
}

// feasiblePoint alternates projections between the affine subspace and
// the box (POCS), starting from the box center.
func (p *polytope) feasiblePoint(rng *rand.Rand) ([]float64, error) {
	x := make([]float64, p.n)
	for i := range x {
		x[i] = 0.45 + 0.1*rng.Float64()
	}
	for iter := 0; iter < 500; iter++ {
		p.projectAffine(x)
		ok := true
		for j := range x {
			if x[j] < -boxTol || x[j] > 1+boxTol {
				ok = false
			}
			if x[j] < 0 {
				x[j] = 0
			}
			if x[j] > 1 {
				x[j] = 1
			}
		}
		if ok {
			p.projectAffine(x)
			clipped := false
			for j := range x {
				if x[j] < -boxTol || x[j] > 1+boxTol {
					clipped = true
				}
			}
			if !clipped {
				return x, nil
			}
		}
	}
	return nil, ErrInfeasible
}

// walker runs hit-and-run from the feasible point.
type walker struct {
	p     *polytope
	x     []float64
	d     []float64 // scratch direction in x-space
	xPrev []float64 // scratch pre-move position for stepChord
}

func (p *polytope) newWalker() *walker {
	return &walker{p: p, x: append([]float64(nil), p.x0...), d: make([]float64, p.n)}
}

// reset returns the walker to the polytope's feasible origin so a reused
// walker can start an independent chain.
func (w *walker) reset() { copy(w.x, w.p.x0) }

// step performs one hit-and-run transition; a nil-dimension polytope
// (point) stays put. It returns the chord parameters (pre-move position
// is no longer available, so callers wanting the chord use stepChord).
func (w *walker) step(rng *rand.Rand) {
	w.stepChord(rng)
}

// stepChord performs one transition and reports the chord it sampled
// from: the previous point moved along direction d for t ∈ [lo, hi]
// uniformly. ok is false when the direction yielded no usable chord
// (degenerate polytope); the position is then unchanged.
//
// The chord is the basis of a Rao–Blackwellized marginal estimator:
// conditioned on the chord, coordinate j is uniform on
// [x_j + lo·d_j, x_j + hi·d_j], whose overlap with any interval is exact
// — far lower variance than binning endpoints, and every step counts.
func (w *walker) stepChord(rng *rand.Rand) (xBefore, dir []float64, lo, hi float64, ok bool) {
	k := len(w.p.basis)
	if k == 0 {
		return nil, nil, 0, 0, false
	}
	for j := range w.d {
		w.d[j] = 0
	}
	// Random direction: Gaussian combination of the orthonormal basis.
	for _, u := range w.p.basis {
		g := rng.NormFloat64()
		for j := range w.d {
			w.d[j] += g * u[j]
		}
	}
	lo, hi = math.Inf(-1), math.Inf(1)
	for j := range w.d {
		dj := w.d[j]
		if math.Abs(dj) < 1e-12 {
			continue
		}
		t0 := (0 - w.x[j]) / dj
		t1 := (1 - w.x[j]) / dj
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > lo {
			lo = t0
		}
		if t1 < hi {
			hi = t1
		}
	}
	if !(hi > lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, nil, 0, 0, false
	}
	if w.xPrev == nil {
		w.xPrev = make([]float64, w.p.n)
	}
	copy(w.xPrev, w.x)
	t := lo + rng.Float64()*(hi-lo)
	for j := range w.x {
		w.x[j] += t * w.d[j]
		if w.x[j] < 0 {
			w.x[j] = 0
		}
		if w.x[j] > 1 {
			w.x[j] = 1
		}
	}
	return w.xPrev, w.d, lo, hi, true
}

// point returns the current position (shared slice; copy to keep).
func (w *walker) point() []float64 { return w.x }

// dim returns the polytope's intrinsic dimension.
func (p *polytope) dim() int { return len(p.basis) }
