package sumprob

// Geometry support: the set of datasets consistent with a history of
// answered sum queries is the polytope
//
//	P = { x ∈ [0,1]^n : A x = b },
//
// with A the 0/1 matrix of (independent) query vectors. Sampling
// uniformly from P is what makes probabilistic sum auditing expensive —
// the paper's Section 3.1 remarks that its max auditor "is decidedly
// more efficient than the probabilistic sum auditor of [21] which needs
// to estimate volumes of convex polytopes"; this package exists to make
// that comparison concrete.
//
// The sampler is textbook hit-and-run restricted to the affine subspace:
// draw an isotropic Gaussian direction in R^n, project out the row space
// of A (leaving an isotropic direction inside null(A)), and intersect it
// with the box constraints. The projection reuses the Cholesky factor of
// A·Aᵀ and costs O(rows·n) per step — for the short histories auditing
// produces, far cheaper than combining the n−rows vectors of an explicit
// null basis. A feasible starting point comes from alternating
// projections (POCS) between the affine subspace and the box.
//
// # Shape vs instance
//
// Everything expensive about a constraint system depends only on its
// ROWS: the independent-subset selection, the elimination factors of the
// dependent rows, and the Cholesky factor of A·Aᵀ. None of it touches the answer vector b. The split below —
// newShape (rows only) vs shape.instantiate (b plus a feasible point) —
// is what fixed the workers>1 regression: a Decide used to re-run the
// whole factorization for every Monte Carlo sample because each sampled
// answer produced a "new" system, even though all those systems share
// one shape (history rows + the queried row) and differ only in the last
// entry of b. Now the shape is built once per decision and each sample
// pays only a consistency check and a near-feasible projection.

import (
	"errors"
	"math"
	"math/rand"
)

// ErrInfeasible reports an empty polytope (inconsistent history).
var ErrInfeasible = errors.New("sumprob: constraint polytope is empty")

const (
	pivotTol = 1e-9
	boxTol   = 1e-7
	// depResTol bounds the residual answer of a dependent row before the
	// system is declared inconsistent (matches the historical check).
	depResTol = 1e-6
)

// depRow records a constraint row that eliminated to zero against the
// kept independent rows: factors[i] is the multiple of kept row i removed
// during elimination. Feasibility of an instance requires the same
// combination of kept answers to reproduce the row's answer.
type depRow struct {
	idx     int // position in the original row list
	factors []float64
}

// shape is the b-independent factorization of a constraint system: the
// kept independent rows, the elimination record of the dependent ones,
// and the Cholesky factor of A·Aᵀ. Shapes are immutable once built and
// safe to share read-only across workers and across decisions.
type shape struct {
	n       int
	rows    [][]float64 // kept independent original rows
	keptIdx []int       // original position of each kept row
	dep     []depRow
	chol    [][]float64
}

// newShape eliminates the (possibly dependent) rows, keeping an
// independent subset and recording the elimination factors of the rest,
// then factors the Gram matrix. b never enters.
func newShape(all [][]float64, n int) (*shape, error) {
	sh := &shape{n: n}
	work := make([][]float64, 0, len(all))
	for r, row := range all {
		cand := append([]float64(nil), row...)
		factors := make([]float64, len(work))
		for i, w := range work {
			pv := pivotIndex(w)
			if pv < 0 {
				continue
			}
			f := cand[pv] / w[pv]
			if f != 0 { //auditlint:allow floateq skip-zero fast path; any nonzero factor must be applied exactly
				for j := range cand {
					cand[j] -= f * w[j]
				}
			}
			factors[i] = f
		}
		if maxAbs(cand) <= pivotTol {
			// Dependent: instances must satisfy the recorded combination.
			sh.dep = append(sh.dep, depRow{idx: r, factors: factors})
			continue
		}
		work = append(work, cand)
		sh.rows = append(sh.rows, append([]float64(nil), row...))
		sh.keptIdx = append(sh.keptIdx, r)
	}
	if err := sh.buildCholesky(); err != nil {
		return nil, err
	}
	return sh, nil
}

// keptB fills dst with the answers of the kept rows.
func (sh *shape) keptB(dst, b []float64) []float64 {
	dst = dst[:0]
	for _, r := range sh.keptIdx {
		dst = append(dst, b[r])
	}
	return dst
}

// checkDependent verifies every dependent row's answer against the
// recorded elimination factors over the kept answers, reproducing the
// historical per-row residual arithmetic exactly.
func (sh *shape) checkDependent(b, bKept []float64) error {
	for _, d := range sh.dep {
		res := b[d.idx]
		for i, f := range d.factors {
			if f != 0 { //auditlint:allow floateq skip-zero fast path; any nonzero factor must be applied exactly
				res -= f * bKept[i]
			}
		}
		if math.Abs(res) > depResTol {
			return ErrInfeasible
		}
	}
	return nil
}

// instantiate binds the shape to an answer vector: consistency-check the
// dependent rows and find a feasible point. start, when non-nil, seeds
// the feasibility search (a point already on or near the instance, e.g.
// the current position of a walker over a sub-system); nil starts from a
// random interior guess drawn from rng.
func (sh *shape) instantiate(b, start []float64, rng *rand.Rand) (*polytope, error) {
	p := &polytope{}
	if err := sh.instantiateInto(p, b, start, rng); err != nil {
		return nil, err
	}
	return p, nil
}

// instantiateInto is instantiate reusing p's buffers — the per-sample
// path of the decision loop, which binds the same extended shape to a
// fresh simulated answer for every Monte Carlo sample.
func (sh *shape) instantiateInto(p *polytope, b, start []float64, rng *rand.Rand) error {
	p.n = sh.n
	p.rows = sh.rows
	p.chol = sh.chol
	p.b = sh.keptB(p.b, b)
	if err := sh.checkDependent(b, p.b); err != nil {
		return err
	}
	if cap(p.x0) < sh.n {
		p.x0 = make([]float64, sh.n)
	}
	p.x0 = p.x0[:sh.n]
	if start != nil {
		copy(p.x0, start)
	} else {
		for i := range p.x0 {
			p.x0[i] = 0.45 + 0.1*rng.Float64()
		}
	}
	return p.feasibleInPlace()
}

// newPolytope builds the workspace from a full (possibly dependent) set
// of constraints, keeping an independent subset, and finds a feasible
// point. rng drives the interior search. (Shape + instance in one step —
// the cold path; decisions hoist the shape and instantiate per sample.)
func newPolytope(all [][]float64, b []float64, n int, rng *rand.Rand) (*polytope, error) {
	sh, err := newShape(all, n)
	if err != nil {
		return nil, err
	}
	return sh.instantiate(b, nil, rng)
}

// polytope is one sampling-ready instance: shared read-only shape slices
// plus the instance's kept answers and feasible point.
type polytope struct {
	n int
	// rows are linearly independent 0/1 query vectors; b their answers.
	rows [][]float64
	b    []float64
	// chol is the Cholesky factor of A·Aᵀ for affine projection.
	chol [][]float64
	// x0 is a feasible point of P (after instantiate succeeds).
	x0 []float64
	// solve scratch for projectAffine (len of rows).
	resid, solveY, solveW []float64
}

func pivotIndex(row []float64) int {
	best, idx := pivotTol, -1
	for j, v := range row {
		if math.Abs(v) > best {
			best, idx = math.Abs(v), j
		}
	}
	return idx
}

func maxAbs(row []float64) float64 {
	m := 0.0
	for _, v := range row {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// buildCholesky factors A·Aᵀ (SPD for independent rows).
func (sh *shape) buildCholesky() error {
	m := len(sh.rows)
	g := make([][]float64, m)
	for i := range g {
		g[i] = make([]float64, m)
		for j := range g[i] {
			g[i][j] = dot(sh.rows[i], sh.rows[j])
		}
	}
	l := make([][]float64, m)
	for i := range l {
		l[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			s := g[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			if i == j {
				if s <= pivotTol {
					return errors.New("sumprob: gram matrix not positive definite")
				}
				l[i][i] = math.Sqrt(s)
			} else {
				l[i][j] = s / l[j][j]
			}
		}
	}
	sh.chol = l
	return nil
}

// solveChol solves (A·Aᵀ) w = r via the Cholesky factor chol, using y as
// forward-substitution scratch. Callers own y and w; chol is read-only,
// so concurrent walkers over a shared polytope each solve with their own
// buffers.
func solveChol(chol [][]float64, r, y, w []float64) {
	m := len(r)
	for i := 0; i < m; i++ {
		s := r[i]
		for k := 0; k < i; k++ {
			s -= chol[i][k] * y[k]
		}
		y[i] = s / chol[i][i]
	}
	for i := m - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < m; k++ {
			s -= chol[k][i] * w[k]
		}
		w[i] = s / chol[i][i]
	}
}

// solveGram solves (A·Aᵀ) w = r via the Cholesky factor, into p.solveW.
func (p *polytope) solveGram(r []float64) []float64 {
	m := len(r)
	if cap(p.solveY) < m {
		p.solveY = make([]float64, m)
		p.solveW = make([]float64, m)
	}
	solveChol(p.chol, r, p.solveY[:m], p.solveW[:m])
	return p.solveW[:m]
}

// projectAffine maps x to the nearest point of {Ax = b}.
func (p *polytope) projectAffine(x []float64) {
	if len(p.rows) == 0 {
		return
	}
	if cap(p.resid) < len(p.rows) {
		p.resid = make([]float64, len(p.rows))
	}
	r := p.resid[:len(p.rows)]
	for i, row := range p.rows {
		r[i] = dot(row, x) - p.b[i]
	}
	w := p.solveGram(r)
	for i, row := range p.rows {
		for j := range x {
			x[j] -= w[i] * row[j]
		}
	}
}

// feasibleInPlace alternates projections between the affine subspace and
// the box (POCS), refining p.x0 in place from wherever it starts. A start
// already on or near the polytope (a walker position over a sub-system)
// converges in one or two projections; the cold random start behaves as
// the historical search did.
func (p *polytope) feasibleInPlace() error {
	x := p.x0
	for iter := 0; iter < 500; iter++ {
		p.projectAffine(x)
		ok := true
		for j := range x {
			if x[j] < -boxTol || x[j] > 1+boxTol {
				ok = false
			}
			if x[j] < 0 {
				x[j] = 0
			}
			if x[j] > 1 {
				x[j] = 1
			}
		}
		if ok {
			p.projectAffine(x)
			clipped := false
			for j := range x {
				if x[j] < -boxTol || x[j] > 1+boxTol {
					clipped = true
				}
			}
			if !clipped {
				return nil
			}
		}
	}
	return ErrInfeasible
}

// walker runs hit-and-run from the feasible point. It owns all mutable
// step state — position, direction, and the projection solve buffers —
// so any number of walkers can share one read-only polytope (the
// decision loop runs one walker per worker lane over the shared base).
type walker struct {
	p     *polytope
	x     []float64
	d     []float64 // scratch direction in x-space
	xPrev []float64 // scratch pre-move position for stepChord
	// row-space projection scratch (len of p.rows).
	resid, solveY, solveW []float64
}

func (p *polytope) newWalker() *walker {
	return &walker{p: p, x: append([]float64(nil), p.x0...), d: make([]float64, p.n)}
}

// reset returns the walker to the polytope's feasible origin so a reused
// walker can start an independent chain.
func (w *walker) reset() { copy(w.x, w.p.x0) }

// resetTo starts the walker's chain from an arbitrary feasible point —
// the warm-start path reusing the previous decision's chain state.
func (w *walker) resetTo(x []float64) { copy(w.x, x) }

// rebase points the walker at a different polytope instance (same
// dimension), reusing its buffers, and restarts from that instance's
// feasible point. The per-sample loop rebases one walker onto each
// freshly instantiated extended system instead of allocating a new one.
func (w *walker) rebase(p *polytope) {
	w.p = p
	if cap(w.x) < p.n {
		w.x = make([]float64, p.n)
		w.d = make([]float64, p.n)
	}
	w.x = w.x[:p.n]
	w.d = w.d[:p.n]
	copy(w.x, p.x0)
}

// step performs one hit-and-run transition; a nil-dimension polytope
// (point) stays put. It returns the chord parameters (pre-move position
// is no longer available, so callers wanting the chord use stepChord).
func (w *walker) step(rng *rand.Rand) {
	w.stepChord(rng)
}

// stepChord performs one transition and reports the chord it sampled
// from: the previous point moved along direction d for t ∈ [lo, hi]
// uniformly. ok is false when the direction yielded no usable chord
// (degenerate polytope); the position is then unchanged.
//
// The chord is the basis of a Rao–Blackwellized marginal estimator:
// conditioned on the chord, coordinate j is uniform on
// [x_j + lo·d_j, x_j + hi·d_j], whose overlap with any interval is exact
// — far lower variance than binning endpoints, and every step counts.
func (w *walker) stepChord(rng *rand.Rand) (xBefore, dir []float64, lo, hi float64, ok bool) {
	if w.p.dim() == 0 {
		return nil, nil, 0, 0, false
	}
	// Random direction: isotropic Gaussian in R^n with the row space
	// projected out, leaving an isotropic direction inside null(A). Costs
	// O(rows·n) against the shared Cholesky factor — much cheaper than
	// combining an explicit (n−rows)-vector null basis when the history
	// is short relative to n.
	for j := range w.d {
		w.d[j] = rng.NormFloat64()
	}
	w.projectRowSpace(w.d)
	lo, hi = math.Inf(-1), math.Inf(1)
	for j := range w.d {
		dj := w.d[j]
		if math.Abs(dj) < 1e-12 {
			continue
		}
		t0 := (0 - w.x[j]) / dj
		t1 := (1 - w.x[j]) / dj
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > lo {
			lo = t0
		}
		if t1 < hi {
			hi = t1
		}
	}
	if !(hi > lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, nil, 0, 0, false
	}
	if w.xPrev == nil {
		w.xPrev = make([]float64, w.p.n)
	}
	copy(w.xPrev, w.x)
	t := lo + rng.Float64()*(hi-lo)
	for j := range w.x {
		w.x[j] += t * w.d[j]
		if w.x[j] < 0 {
			w.x[j] = 0
		}
		if w.x[j] > 1 {
			w.x[j] = 1
		}
	}
	return w.xPrev, w.d, lo, hi, true
}

// projectRowSpace removes d's component along the constraint rows,
// d ← d − Aᵀ(A·Aᵀ)⁻¹A·d, using the walker's own solve scratch so the
// underlying polytope stays read-only.
func (w *walker) projectRowSpace(d []float64) {
	m := len(w.p.rows)
	if m == 0 {
		return
	}
	if cap(w.resid) < m {
		w.resid = make([]float64, m)
		w.solveY = make([]float64, m)
		w.solveW = make([]float64, m)
	}
	r := w.resid[:m]
	for i, row := range w.p.rows {
		r[i] = dot(row, d)
	}
	ws := w.solveW[:m]
	solveChol(w.p.chol, r, w.solveY[:m], ws)
	for i, row := range w.p.rows {
		c := ws[i]
		for j := range d {
			d[j] -= c * row[j]
		}
	}
}

// point returns the current position (shared slice; copy to keep).
func (w *walker) point() []float64 { return w.x }

// dim returns the polytope's intrinsic dimension: the rows kept by the
// shape's elimination are independent, so it is n minus their count.
func (p *polytope) dim() int { return p.n - len(p.rows) }
