// Package naive implements the answer-dependent max auditor whose denials
// the Section 2.2 example shows to leak private data, plus the "oblivious"
// auditor that answers everything. Both exist solely as attack baselines:
// the game harness uses them to reproduce the denial-leakage breach that
// motivates simulatable auditing. They must never protect real data.
package naive

import (
	"fmt"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
	"queryaudit/internal/synopsis"
)

// MaxAuditor is the non-simulatable max auditor of the Section 2.2
// example: it looks at the true answer of the current query and denies
// exactly when releasing that answer would uniquely determine some value.
// The denial itself then leaks: an attacker who sees "deny" learns the
// answer must have been one of the compromising values.
type MaxAuditor struct {
	n   int
	syn *synopsis.Max
}

// NewMax returns the answer-dependent max auditor over n records.
func NewMax(n int) *MaxAuditor {
	return &MaxAuditor{n: n, syn: synopsis.NewMax(n)}
}

// Name implements audit.AnswerDependent.
func (a *MaxAuditor) Name() string { return "naive-max-answer-dependent" }

// DecideWithAnswer implements audit.AnswerDependent: it folds the *true*
// answer into a trial synopsis and denies iff that reveals a value. This
// is precisely the unsafe behaviour the paper warns about.
func (a *MaxAuditor) DecideWithAnswer(q query.Query, trueAnswer float64) (audit.Decision, error) {
	if q.Kind != query.Max {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("naive: empty query set")
	}
	trial := a.syn.Clone()
	if err := trial.Add(q.Set, trueAnswer); err != nil {
		// The true answer can never be inconsistent; treat as deny.
		return audit.Deny, nil
	}
	if trial.SingletonEqCount() > 0 {
		return audit.Deny, nil
	}
	return audit.Answer, nil
}

// Record implements audit.AnswerDependent.
func (a *MaxAuditor) Record(q query.Query, answer float64) {
	if err := a.syn.Add(q.Set, answer); err != nil {
		panic(fmt.Sprintf("naive: recording true answer failed: %v", err))
	}
}

// Synopsis exposes a copy of the trail (used by the attack demo to show
// what the attacker can reconstruct).
func (a *MaxAuditor) Synopsis() *synopsis.Max { return a.syn.Clone() }

// Oblivious answers every well-formed query — the "no auditing" lower
// bound for privacy and upper bound for utility.
type Oblivious struct{}

// Name implements audit.Auditor.
func (Oblivious) Name() string { return "oblivious" }

// Decide implements audit.Auditor: always answer.
func (Oblivious) Decide(q query.Query) (audit.Decision, error) {
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("oblivious: empty query set")
	}
	return audit.Answer, nil
}

// Record implements audit.Auditor.
func (Oblivious) Record(query.Query, float64) {}

// DenyAll denies every query — the trivially private, zero-utility
// auditor the introduction dismisses.
type DenyAll struct{}

// Name implements audit.Auditor.
func (DenyAll) Name() string { return "deny-all" }

// Decide implements audit.Auditor: always deny.
func (DenyAll) Decide(query.Query) (audit.Decision, error) { return audit.Deny, nil }

// Record implements audit.Auditor.
func (DenyAll) Record(query.Query, float64) {}
