package naive

import (
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
)

// TestNaiveLeaksThroughDenial reproduces the Section 2.2 example
// literally: max{a,b,c}=9 answered; the probe max{a,b} is denied exactly
// when x_c = 9 — so the denial hands the attacker x_c.
func TestNaiveLeaksThroughDenial(t *testing.T) {
	// Case 1: c is the maximum. Probe denied.
	a := NewMax(3)
	full := query.New(query.Max, 0, 1, 2)
	if d, err := a.DecideWithAnswer(full, 9); err != nil || d != audit.Answer {
		t.Fatalf("full query: %v %v", d, err)
	}
	a.Record(full, 9)
	probe := query.New(query.Max, 0, 1)
	if d, _ := a.DecideWithAnswer(probe, 7); d != audit.Deny {
		t.Fatal("probe with smaller true answer must be denied (x_c pinned)")
	}

	// Case 2: the max is inside {a,b}. Probe answered.
	b := NewMax(3)
	if d, _ := b.DecideWithAnswer(full, 9); d != audit.Answer {
		t.Fatal("full query should pass")
	}
	b.Record(full, 9)
	if d, _ := b.DecideWithAnswer(probe, 9); d != audit.Answer {
		t.Fatal("probe with equal answer is safe and must be answered")
	}
	// The pair of behaviours is the leak: deny ⇔ x_c = 9.
}

// TestObliviousAndDenyAll contracts.
func TestObliviousAndDenyAll(t *testing.T) {
	var o Oblivious
	if d, err := o.Decide(query.New(query.Sum, 0, 1)); err != nil || d != audit.Answer {
		t.Fatal("oblivious must answer")
	}
	if _, err := o.Decide(query.Query{Kind: query.Sum}); err == nil {
		t.Fatal("empty set still invalid")
	}
	var da DenyAll
	if d, _ := da.Decide(query.New(query.Sum, 0, 1)); d != audit.Deny {
		t.Fatal("deny-all must deny")
	}
}

// TestNaiveRejectsWrongKind.
func TestNaiveRejectsWrongKind(t *testing.T) {
	a := NewMax(3)
	if _, err := a.DecideWithAnswer(query.New(query.Sum, 0, 1), 5); err == nil {
		t.Fatal("sum must be rejected by the max auditor")
	}
}
