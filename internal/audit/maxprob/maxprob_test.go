package maxprob

import (
	"math"
	"math/rand"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/interval"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/synopsis"
)

// TestSafeClosedFormMatchesHandComputation checks Algorithm 1's formulas
// on a case computable by hand: [max{0,1,2} = 0.9] with γ = 4.
// y = (1−1/3)/(0.9·4) = 0.185…; cells 1–3 have ratio 4y ≈ 0.7407; cell 4
// holds the point mass: post = y·0.6 + 1/3, ratio ≈ 1.7778.
func TestSafeClosedFormMatchesHandComputation(t *testing.T) {
	syn := synopsis.NewMax(3)
	if err := syn.Add(query.NewSet(0, 1, 2), 0.9); err != nil {
		t.Fatal(err)
	}
	part := interval.NewPartition(0, 1, 4)
	// λ = 0.5 → window [0.5, 2]: both 0.7407 and 1.7778 inside → safe.
	if !SafeSynopsis(syn, part, interval.RatioWindow{Lambda: 0.5}) {
		t.Fatal("λ=0.5 should be safe")
	}
	// λ = 0.3 → window [0.7, 1.4286]: 1.7778 outside → unsafe.
	if SafeSynopsis(syn, part, interval.RatioWindow{Lambda: 0.3}) {
		t.Fatal("λ=0.3 should be unsafe (top-cell ratio 1.78)")
	}
}

// TestSafeBeyondIntervalAlwaysUnsafe: any answer below the top cell
// zeroes the posterior of some interval.
func TestSafeBeyondIntervalAlwaysUnsafe(t *testing.T) {
	syn := synopsis.NewMax(3)
	if err := syn.Add(query.NewSet(0, 1, 2), 0.6); err != nil {
		t.Fatal(err)
	}
	part := interval.NewPartition(0, 1, 4)
	if SafeSynopsis(syn, part, interval.RatioWindow{Lambda: 0.9}) {
		t.Fatal("an answer of 0.6 zeroes cells above it — never safe")
	}
}

// TestPosteriorFormulaMatchesMonteCarlo validates the closed-form
// posterior behind Algorithm 1 against empirical frequencies from
// SampleConsistent.
func TestPosteriorFormulaMatchesMonteCarlo(t *testing.T) {
	syn := synopsis.NewMax(4)
	if err := syn.Add(query.NewSet(0, 1, 2), 0.9); err != nil {
		t.Fatal(err)
	}
	rng := randx.New(5)
	const samples = 60000
	gamma := 5
	part := interval.NewPartition(0, 1, gamma)
	counts := make([]float64, gamma+1)
	for s := 0; s < samples; s++ {
		xs := SampleConsistent(syn, 4, rng)
		counts[part.CellIndex(xs[0])]++
	}
	M, sSize := 0.9, 3.0
	y := (1 - 1/sSize) / (M * float64(gamma))
	for j := 1; j <= gamma; j++ {
		want := y // cells fully below M
		if j == gamma {
			frac := M*float64(gamma) - math.Ceil(M*float64(gamma)) + 1
			want = y*frac + 1/sSize
		}
		got := counts[j] / samples
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("cell %d: empirical %g vs formula %g", j, got, want)
		}
	}
}

// TestSingletonDenied: a max over one fresh element is a full reveal of
// its distribution tail — denied.
func TestSingletonDenied(t *testing.T) {
	a, err := New(10, Params{Lambda: 0.3, Gamma: 5, Delta: 0.1, T: 20, Samples: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := a.Decide(query.New(query.Max, 3)); d != audit.Deny {
		t.Fatal("singleton must be denied")
	}
}

// TestLargeFreshSetAnswered: a first query over many elements barely
// moves any posterior and must be answered under a generous λ.
func TestLargeFreshSetAnswered(t *testing.T) {
	n := 80
	a, err := New(n, Params{Lambda: 0.5, Gamma: 4, Delta: 0.2, T: 10, Samples: 96, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	set := make([]int, n)
	for i := range set {
		set[i] = i
	}
	if d, _ := a.Decide(query.New(query.Max, set...)); d != audit.Answer {
		t.Fatal("a large fresh max query should be answered")
	}
}

// TestSimulatabilityDecisionIgnoresData: the decision may depend only on
// the history, never on the underlying data — two auditors with the same
// history and seed must agree on every decision regardless of the
// hypothetical data behind them.
func TestSimulatabilityDecisionIgnoresData(t *testing.T) {
	params := Params{Lambda: 0.4, Gamma: 4, Delta: 0.2, T: 10, Samples: 48, Seed: 7}
	a1, _ := New(30, params)
	a2, _ := New(30, params)
	rng := rand.New(rand.NewSource(8))
	for step := 0; step < 6; step++ {
		set := randx.SubsetSizeBetween(rng, 30, 5, 25)
		q := query.New(query.Max, set...)
		d1, _ := a1.Decide(q)
		d2, _ := a2.Decide(q)
		if d1 != d2 {
			t.Fatalf("step %d: decisions diverged with identical histories", step)
		}
		if d1 == audit.Answer {
			// Record the same (arbitrary but consistent) answer in both.
			xs := SampleConsistent(a1.Synopsis(), 30, rng)
			ans := q.Eval(xs)
			a1.Record(q, ans)
			a2.Record(q, ans)
		}
	}
}

// TestBoundedRangeEquivalence: the paper's footnote — other data ranges
// reduce to [0,1] by affine normalization. Decisions over salaries in
// [30k, 250k] must coincide with decisions over the normalized data.
func TestBoundedRangeEquivalence(t *testing.T) {
	const n = 40
	lo, hi := 30_000.0, 250_000.0
	base := Params{Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 10, Samples: 64, Seed: 3}
	scaled := base
	scaled.Alpha, scaled.Beta = lo, hi
	aUnit, _ := New(n, base)
	aScaled, _ := New(n, scaled)
	rng := rand.New(rand.NewSource(4))
	xsUnit := randx.DuplicateFreeDataset(rng, n, 0, 1)
	for step := 0; step < 6; step++ {
		set := randx.SubsetSizeBetween(rng, n, 10, n)
		q := query.New(query.Max, set...)
		d1, _ := aUnit.Decide(q)
		d2, _ := aScaled.Decide(q)
		if d1 != d2 {
			t.Fatalf("step %d: unit=%v scaled=%v", step, d1, d2)
		}
		if d1 == audit.Answer {
			ansUnit := q.Eval(xsUnit)
			aUnit.Record(q, ansUnit)
			aScaled.Record(q, lo+ansUnit*(hi-lo))
		}
	}
}

// TestPrivacyGameBreachRate plays the (λ, γ, T) game with a random
// attacker and verifies the empirical breach frequency stays within δ
// (plus Monte Carlo slack).
func TestPrivacyGameBreachRate(t *testing.T) {
	const (
		n      = 40
		trials = 40
	)
	params := Params{Lambda: 0.4, Gamma: 4, Delta: 0.2, T: 8, Samples: 64}
	part := interval.NewPartition(0, 1, params.Gamma)
	window := interval.RatioWindow{Lambda: params.Lambda}
	breaches := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		xs := randx.DuplicateFreeDataset(rng, n, 0, 1)
		p := params
		p.Seed = int64(trial)
		a, err := New(n, p)
		if err != nil {
			t.Fatal(err)
		}
		truth := synopsis.NewMax(n)
		breached := false
		for round := 0; round < params.T; round++ {
			set := randx.SubsetSizeBetween(rng, n, 2, n)
			q := query.New(query.Max, set...)
			d, err := a.Decide(q)
			if err != nil {
				t.Fatal(err)
			}
			if d == audit.Deny {
				continue
			}
			ans := q.Eval(xs)
			a.Record(q, ans)
			if err := truth.Add(q.Set, ans); err != nil {
				t.Fatalf("true answer rejected: %v", err)
			}
			if !SafeSynopsis(truth, part, window) {
				breached = true
				break
			}
		}
		if breached {
			breaches++
		}
	}
	rate := float64(breaches) / trials
	if rate > params.Delta+0.15 {
		t.Fatalf("breach rate %g exceeds δ=%g by too much", rate, params.Delta)
	}
}
