// Package maxprob implements the paper's Section 3.1 contribution: a
// (λ, δ, γ, T)-private simulatable auditor for max queries under partial
// disclosure (probabilistic compromise), for datasets drawn uniformly
// from the duplicate-free points of [0,1]^n.
//
// Algorithm 1 ("Safe") decides whether a hypothetical answered history is
// safe: for every element and every interval of the γ-partition, the
// posterior/prior ratio must stay within [1−λ, 1/(1−λ)]. The synopsis
// makes the posterior closed-form — an element under [max(S)=M] is
// uniform on [0, M) with mass (1−1/|S|) plus a point mass 1/|S| at M; an
// element under [max(S)<M] is uniform on [0, M).
//
// Algorithm 2 (the simulatable auditor) samples datasets consistent with
// the current synopsis, computes the answer each sample would give to the
// new query, and denies iff the fraction of samples whose answer would
// violate safety exceeds δ/(2T). Theorem 1 proves (λ, δ, γ, T)-privacy.
//
// The Monte Carlo loop runs on the shared parallel engine
// (internal/mcpar): the sample budget fans out across Params.Workers
// workers, every sample drawing from its own counter-based stream keyed
// by (decision seed, sample index), so decisions are bit-identical at any
// worker count and the loop exits early once the δ/(2T) barrier is
// provably crossed or provably out of reach.
package maxprob

import (
	"fmt"
	"math"
	"math/rand"

	"queryaudit/internal/audit"
	"queryaudit/internal/interval"
	"queryaudit/internal/mcpar"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/synopsis"
)

// Params are the privacy-game parameters of the (λ, δ, γ, T) game plus
// sampling knobs.
type Params struct {
	// Lambda bounds the tolerated posterior/prior ratio change (0<λ<1).
	Lambda float64
	// Gamma is the number of partition intervals of [0,1].
	Gamma int
	// Delta bounds the attacker's winning probability over T rounds.
	Delta float64
	// T is the number of game rounds.
	T int
	// Samples overrides the number of Monte Carlo datasets per decision;
	// 0 selects the Chernoff-derived default O((T/δ)·log(T/δ)).
	Samples int
	// Workers bounds the parallel Monte Carlo pool per decision;
	// 0 = GOMAXPROCS, 1 = sequential. Decisions are identical at any
	// worker count for a fixed Seed.
	Workers int
	// Seed drives the auditor's internal randomness.
	Seed int64
	// AdaptiveAlpha, when positive, arms mcpar's variance-aware adaptive
	// sequential test: a decision stops early once its outcome is pinned
	// with confidence 1-AdaptiveAlpha. Zero (the default) keeps the exact
	// certificates only, which never change a decision.
	AdaptiveAlpha float64
	// Alpha, Beta optionally widen the data range from the default [0,1]
	// (the paper's footnote: "the algorithm can easily be extended to
	// other ranges"). Internally everything is affinely normalized to
	// [0,1]; posterior/prior ratios are invariant under that map.
	Alpha, Beta float64
}

// rangeBounds returns the configured data range, defaulting to [0,1].
func (p Params) rangeBounds() (alpha, beta float64) {
	if p.Beta > p.Alpha {
		return p.Alpha, p.Beta
	}
	return 0, 1
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Lambda <= 0 || p.Lambda >= 1 {
		return fmt.Errorf("maxprob: lambda must be in (0,1), got %g", p.Lambda)
	}
	if p.Gamma < 1 {
		return fmt.Errorf("maxprob: gamma must be >= 1, got %d", p.Gamma)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("maxprob: delta must be in (0,1), got %g", p.Delta)
	}
	if p.T < 1 {
		return fmt.Errorf("maxprob: T must be >= 1, got %d", p.T)
	}
	if p.Beta < p.Alpha {
		return fmt.Errorf("maxprob: beta %g below alpha %g", p.Beta, p.Alpha)
	}
	return nil
}

// DefaultSamples is the Chernoff-derived sample count for distinguishing
// breach probability above δ/T from below δ/(2T).
func (p Params) DefaultSamples() int {
	if p.Samples > 0 {
		return p.Samples
	}
	r := float64(p.T) / p.Delta
	n := int(math.Ceil(r * math.Log(r)))
	if n < 8 {
		n = 8
	}
	return n
}

// Auditor is the Section 3.1 simulatable probabilistic max auditor.
type Auditor struct {
	n      int
	params Params
	part   interval.Partition
	window interval.RatioWindow
	syn    *synopsis.Max
	// decisions counts Decide calls; each decision derives its own base
	// seed from (params.Seed, decisions), so samples are fresh per
	// decision yet bit-reproducible across runs and worker counts.
	decisions uint64
	// mc observes per-decision Monte Carlo accounting (may be nil).
	mc    mcpar.Observer
	sched *mcpar.Scheduler
	// denyThreshold is δ/(2T).
	denyThreshold float64
	samples       int
	// alpha, scale implement the affine normalization onto [0,1].
	alpha, scale float64
}

// New returns an auditor over n records in [0,1].
func New(n int, params Params) (*Auditor, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	alpha, beta := params.rangeBounds()
	return &Auditor{
		n:             n,
		params:        params,
		part:          interval.NewPartition(0, 1, params.Gamma),
		window:        interval.RatioWindow{Lambda: params.Lambda},
		syn:           synopsis.NewMax(n),
		denyThreshold: params.Delta / (2 * float64(params.T)),
		samples:       params.DefaultSamples(),
		alpha:         alpha,
		scale:         beta - alpha,
	}, nil
}

// SetWorkers adjusts the Monte Carlo pool size (0 = GOMAXPROCS).
func (a *Auditor) SetWorkers(n int) { a.params.Workers = n }

// SetMCObserver installs the per-decision Monte Carlo observer (nil
// disables).
func (a *Auditor) SetMCObserver(o mcpar.Observer) { a.mc = o }

// SetScheduler points the auditor's decisions at a shared assist pool
// (nil selects mcpar.Default()).
func (a *Auditor) SetScheduler(s *mcpar.Scheduler) { a.sched = s }

// normalize maps a raw answer into the internal [0,1] coordinates.
func (a *Auditor) normalize(v float64) float64 { return (v - a.alpha) / a.scale }

// Name implements audit.Auditor.
func (a *Auditor) Name() string { return "max-partial-disclosure" }

// N returns the number of records.
func (a *Auditor) N() int { return a.n }

// SafeSynopsis is Algorithm 1 over a synopsis: it reports whether every
// element × interval posterior/prior ratio is inside the λ-window.
//
// The per-element check is O(1): within one predicate the ratio takes at
// most three distinct values (intervals fully below M, the interval
// containing M, intervals beyond M — the latter always unsafe because
// the posterior there is 0). Elements outside every predicate have ratio
// exactly 1.
func SafeSynopsis(syn *synopsis.Max, part interval.Partition, window interval.RatioWindow) bool {
	gamma := float64(part.Gamma)
	for _, p := range syn.Preds() {
		M := p.Value
		if M <= 0 || M > 1 {
			return false // degenerate bound: everything pinned or absurd
		}
		mIdx := math.Ceil(M * gamma) // ⌈Mγ⌉, the 1-based cell containing M
		if mIdx < gamma {
			// Some interval lies wholly beyond M: posterior 0 there.
			return false
		}
		frac := M*gamma - mIdx + 1 // fraction of the M-cell below M
		switch p.Op {
		case synopsis.OpEq:
			s := float64(len(p.Set))
			y := (1 - 1/s) / (M * gamma) // P(x ∈ cell) for cells below M
			if mIdx > 1 {
				if !window.Safe(gamma * y) {
					return false
				}
			}
			if !window.Safe(gamma * (y*frac + 1/s)) {
				return false
			}
		default: // OpLt and OpLe: uniform on [0, M)
			y := 1 / (M * gamma)
			if mIdx > 1 {
				if !window.Safe(gamma * y) {
					return false
				}
			}
			if !window.Safe(gamma * y * frac) {
				return false
			}
		}
	}
	return true
}

// SampleConsistent draws a dataset uniformly from all datasets consistent
// with the synopsis: per equality predicate a uniformly chosen witness
// takes the bound and the rest fall uniformly below it; strict-predicate
// elements fall uniformly below their bound; unconstrained elements are
// uniform on [0,1].
func SampleConsistent(syn *synopsis.Max, n int, rng *rand.Rand) []float64 {
	xs := make([]float64, n)
	samplePreds(syn.Preds(), xs, make([]bool, n), rng)
	return xs
}

// samplePreds fills xs with one consistent dataset using caller-owned
// scratch (constrained is reset in place) — the allocation-free core of
// SampleConsistent used by the parallel decision loop, where preds is a
// per-decision snapshot shared read-only across workers.
func samplePreds(preds []synopsis.Pred, xs []float64, constrained []bool, rng *rand.Rand) {
	for i := range constrained {
		constrained[i] = false
	}
	for _, p := range preds {
		switch p.Op {
		case synopsis.OpEq:
			w := p.Set[rng.Intn(len(p.Set))]
			for _, i := range p.Set {
				if i == w {
					xs[i] = p.Value
				} else {
					xs[i] = rng.Float64() * p.Value
				}
				constrained[i] = true
			}
		default:
			for _, i := range p.Set {
				xs[i] = rng.Float64() * p.Value
				constrained[i] = true
			}
		}
	}
	for i := range xs {
		if !constrained[i] {
			xs[i] = rng.Float64()
		}
	}
}

// Decide implements audit.Auditor (Algorithm 2). The true answer is never
// consulted: answers are simulated from datasets consistent with the
// already-released history.
func (a *Auditor) Decide(q query.Query) (audit.Decision, error) {
	if q.Kind != query.Max {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("maxprob: empty query set")
	}
	for _, i := range q.Set {
		if i < 0 || i >= a.n {
			return audit.Deny, fmt.Errorf("maxprob: index %d out of range", i)
		}
	}
	budget := a.samples
	barrier := mcpar.DenyBarrier(budget, a.denyThreshold)
	seed := randx.DeriveSeed(a.params.Seed, a.decisions)
	a.decisions++
	preds := a.syn.Preds() // per-decision snapshot, read-only across workers
	out := mcpar.Vote(
		mcpar.Config{
			Workers:       a.params.Workers,
			Seed:          seed,
			Observer:      a.mc,
			Sched:         a.sched,
			AdaptiveAlpha: a.params.AdaptiveAlpha,
		},
		budget, barrier,
		func() *decideScratch {
			return &decideScratch{
				xs:          make([]float64, a.n),
				constrained: make([]bool, a.n),
				trial:       synopsis.NewMax(a.n),
			}
		},
		func(_ int, rng *rand.Rand, sc *decideScratch) bool {
			samplePreds(preds, sc.xs, sc.constrained, rng)
			ans := maxOver(sc.xs, q.Set)
			// Reset the lane's scratch synopsis to the trail instead of
			// deep-cloning it: the clone's map and slice churn was the
			// dominant allocation of the sample loop.
			a.syn.CopyInto(sc.trial)
			if err := sc.trial.Add(q.Set, ans); err != nil {
				// A sampled dataset is consistent by construction; Add can
				// only fail on float pathologies. Count as unsafe.
				return true
			}
			return !SafeSynopsis(sc.trial, a.part, a.window)
		})
	if out.Exceeded {
		return audit.Deny, nil
	}
	return audit.Answer, nil
}

// decideScratch is the per-worker reusable sample buffer of Decide.
type decideScratch struct {
	xs          []float64
	constrained []bool
	trial       *synopsis.Max
}

// Record implements audit.Auditor. Raw answers are normalized onto the
// internal [0,1] coordinates.
func (a *Auditor) Record(q query.Query, answer float64) {
	if err := a.syn.Add(q.Set, a.normalize(answer)); err != nil {
		panic(fmt.Sprintf("maxprob: recording true answer failed: %v", err))
	}
}

// Synopsis exposes a copy of the trail (tests and diagnostics).
func (a *Auditor) Synopsis() *synopsis.Max { return a.syn.Clone() }

func maxOver(xs []float64, s query.Set) float64 {
	best := xs[s[0]]
	for _, i := range s[1:] {
		if xs[i] > best {
			best = xs[i]
		}
	}
	return best
}
