package maxprob

import (
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/metrics"
	"queryaudit/internal/query"
)

func testParams() Params {
	return Params{Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 12, Samples: 512}
}

// A fixed seed must yield bit-identical decision sequences at any worker
// count — the engine's central determinism guarantee.
func TestDecideInvariantAcrossWorkers(t *testing.T) {
	run := func(workers int) []audit.Decision {
		p := testParams()
		p.Workers = workers
		p.Seed = 42
		a, err := New(30, p)
		if err != nil {
			t.Fatal(err)
		}
		queries := []query.Query{
			query.New(query.Max, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
			query.New(query.Max, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19),
			query.New(query.Max, 5),
			query.New(query.Max, 0, 1, 2, 3, 4, 10, 11, 12),
			query.New(query.Max, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29),
		}
		var ds []audit.Decision
		for _, q := range queries {
			d, err := a.Decide(q)
			if err != nil {
				t.Fatal(err)
			}
			ds = append(ds, d)
			if d == audit.Answer {
				a.Record(q, 0.25+0.05*float64(len(ds)))
			}
		}
		return ds
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("decision %d differs at workers=%d: %v vs %v", i, workers, got[i], want[i])
			}
		}
	}
}

// A singleton max query is unsafe in every sampled world, so the deny
// certificate fires after barrier+1 samples — the decision must return
// without consuming the 512-sample budget, visible through the
// mc_samples_saved_total metric.
func TestEarlyExitSavesSamples(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := testParams()
		p.Workers = workers
		p.Seed = 7
		a, err := New(20, p)
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		a.SetMCObserver(metrics.NewMCCollector(reg))
		d, err := a.Decide(query.New(query.Max, 3))
		if err != nil {
			t.Fatal(err)
		}
		if d != audit.Deny {
			t.Fatal("singleton max query must be denied")
		}
		snap := reg.Snapshot()
		budget := snap.Counters["mc_samples_total"] + snap.Counters["mc_samples_saved_total"]
		if budget != 512 {
			t.Fatalf("workers=%d: accounted budget %d, want 512", workers, budget)
		}
		if snap.Counters["mc_samples_saved_total"] < 400 {
			t.Fatalf("workers=%d: early exit saved only %d of 512 samples",
				workers, snap.Counters["mc_samples_saved_total"])
		}
		if snap.Counters["mc_decisions_total"] != 1 {
			t.Fatalf("workers=%d: %d decisions recorded", workers, snap.Counters["mc_decisions_total"])
		}
	}
}

// Consecutive decisions must draw fresh randomness: a query answered on
// the edge of the threshold must not produce byte-identical vote patterns
// on a repeat (the decision counter reseeds each call).
func TestDecisionsUseFreshSeeds(t *testing.T) {
	p := testParams()
	p.Seed = 3
	a, err := New(20, p)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	a.SetMCObserver(metrics.NewMCCollector(reg))
	q := query.New(query.Max, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	if _, err := a.Decide(q); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Decide(q); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["mc_decisions_total"]; got != 2 {
		t.Fatalf("recorded %d decisions, want 2", got)
	}
	// Reproducibility across auditor instances: same seed, same history,
	// same decision ordinals ⇒ same outcomes.
	b, err := New(20, p)
	if err != nil {
		t.Fatal(err)
	}
	d1a, _ := New(20, p)
	for i := 0; i < 3; i++ {
		db, err1 := b.Decide(q)
		dc, err2 := d1a.Decide(q)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if db != dc {
			t.Fatalf("decision %d: instances with equal seeds diverged", i)
		}
	}
}
