package audit

import "sort"

// CandidateAnswers builds the finite representative answer set behind
// the paper's Theorem 5: every relevant value itself, plus one
// representative of each open interval those values delimit (one below
// the smallest, one between each consecutive pair, one above the
// largest).
//
// Interval representatives are chosen to avoid the `avoid` set — the
// values held by equality predicates anywhere in the synopsis. A
// representative that collided with a foreign equality value would be
// spuriously inconsistent (two elements cannot share a value in a
// duplicate-free database) and its whole interval's behaviour would go
// unexamined — which can both hide compromising intervals (a privacy
// hole) and mask answerable ones (lost utility). The collision case is
// reachable whenever data values sit on a lattice, e.g. integer-valued
// salaries.
func CandidateAnswers(values []float64, avoid map[float64]bool) []float64 {
	if len(values) == 0 {
		c := 0.0
		for avoid[c] {
			c++
		}
		return []float64{c}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	// Dedup.
	uniq := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] { //auditlint:allow floateq dedup of sorted copies; only bit-identical values may collapse
			uniq = append(uniq, v)
		}
	}
	out := make([]float64, 0, 2*len(uniq)+1)
	out = append(out, below(uniq[0], avoid))
	for i, v := range uniq {
		out = append(out, v)
		if i+1 < len(uniq) {
			out = append(out, between(v, uniq[i+1], avoid))
		}
	}
	out = append(out, above(uniq[len(uniq)-1], avoid))
	return out
}

// below returns a representative strictly under v avoiding the set.
func below(v float64, avoid map[float64]bool) float64 {
	c := v - 1
	for avoid[c] {
		c--
	}
	return c
}

// above returns a representative strictly over v avoiding the set.
func above(v float64, avoid map[float64]bool) float64 {
	c := v + 1
	for avoid[c] {
		c++
	}
	return c
}

// between returns a representative in the open interval (lo, hi)
// avoiding the set, bisecting toward lo on collision (the avoid set is
// finite, so this terminates).
func between(lo, hi float64, avoid map[float64]bool) float64 {
	c := (lo + hi) / 2
	for avoid[c] && c > lo {
		c = (lo + c) / 2
	}
	return c
}
