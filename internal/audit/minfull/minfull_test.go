package minfull

import (
	"math/rand"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
)

// TestMirrorsBehaviour: the canonical max-auditor behaviours hold in
// min orientation.
func TestMirrorsBehaviour(t *testing.T) {
	xs := []float64{3, 7, 5}
	a := New(3)
	if d, _ := a.Decide(query.New(query.Min, 1)); d != audit.Deny {
		t.Fatal("singleton min must be denied")
	}
	full := query.New(query.Min, 0, 1, 2)
	if d, _ := a.Decide(full); d != audit.Answer {
		t.Fatal("fresh min should be answered")
	}
	a.Record(full, full.Eval(xs))
	// Probing without one element would localize the minimum.
	if d, _ := a.Decide(query.New(query.Min, 1, 2)); d != audit.Deny {
		t.Fatal("subset probe must be denied")
	}
	if a.Compromised() {
		t.Fatal("no compromise expected")
	}
}

// TestWrongKind.
func TestWrongKind(t *testing.T) {
	a := New(3)
	if _, err := a.Decide(query.New(query.Max, 0, 1)); err == nil {
		t.Fatal("max must be rejected by the min auditor")
	}
}

// TestTruthStreamsSafe: random min streams never compromise.
func TestTruthStreamsSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(8)
		xs := make([]float64, n)
		used := map[float64]bool{}
		for i := range xs {
			v := float64(rng.Intn(50))
			for used[v] {
				v = float64(rng.Intn(50))
			}
			used[v] = true
			xs[i] = v
		}
		a := New(n)
		for step := 0; step < 25; step++ {
			var idx []int
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					idx = append(idx, i)
				}
			}
			if len(idx) == 0 {
				continue
			}
			q := query.New(query.Min, idx...)
			if d, _ := a.Decide(q); d == audit.Answer {
				a.Record(q, q.Eval(xs))
			}
			if a.Compromised() {
				t.Fatalf("trial %d: compromise", trial)
			}
			if rng.Intn(10) == 0 {
				i := rng.Intn(n)
				a.NoteUpdate(i)
				v := float64(rng.Intn(50))
				for used[v] {
					v = float64(rng.Intn(50))
				}
				used[v] = true
				xs[i] = v
			}
		}
	}
}
