// Package minfull implements the simulatable full-disclosure min
// auditor — the exact mirror of package maxfull (min(S) = −max(−S)),
// provided standalone because the paper's Section 2.1 inventory treats
// sum, max and min auditing as separate known problems. Deployments
// auditing *bags* of max and min together must use maxminfull instead:
// the two aggregates compose information that neither single-kind
// auditor can see.
package minfull

import (
	"fmt"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/query"
	"queryaudit/internal/synopsis"
)

// Auditor is the simulatable min auditor.
type Auditor struct {
	inner *maxfull.Auditor
}

// New returns a min auditor over n records (duplicate-free data).
func New(n int) *Auditor {
	return &Auditor{inner: maxfull.New(n)}
}

// Name implements audit.Auditor.
func (a *Auditor) Name() string { return "min-full-disclosure" }

// N returns the number of records.
func (a *Auditor) N() int { return a.inner.N() }

// Decide implements audit.Auditor by mirroring onto the max auditor.
func (a *Auditor) Decide(q query.Query) (audit.Decision, error) {
	if q.Kind != query.Min {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	return a.inner.Decide(query.Query{Set: q.Set, Kind: query.Max})
}

// Record implements audit.Auditor.
func (a *Auditor) Record(q query.Query, answer float64) {
	a.inner.Record(query.Query{Set: q.Set, Kind: query.Max}, -answer)
}

// NoteUpdate implements audit.UpdateObserver.
func (a *Auditor) NoteUpdate(idx int) { a.inner.NoteUpdate(idx) }

// Compromised reports whether the committed trail pins a value.
func (a *Auditor) Compromised() bool { return a.inner.Compromised() }

// Snapshot captures the auditor's audit trail for persistence.
func (a *Auditor) Snapshot() synopsis.Snapshot { return a.inner.Snapshot() }

// Restore rebuilds an auditor from a snapshot.
func Restore(s synopsis.Snapshot) (*Auditor, error) {
	inner, err := maxfull.Restore(s)
	if err != nil {
		return nil, err
	}
	return &Auditor{inner: inner}, nil
}

// Knowledge implements audit.KnowledgeReporter, mirroring the inner max
// auditor's bounds back into min orientation.
func (a *Auditor) Knowledge() []audit.ElementKnowledge {
	inner := a.inner.Knowledge()
	out := make([]audit.ElementKnowledge, len(inner))
	for i, k := range inner {
		out[i] = audit.ElementKnowledge{
			Index:       k.Index,
			Lower:       -k.Upper,
			Upper:       -k.Lower,
			LowerStrict: k.UpperStrict,
			UpperStrict: k.LowerStrict,
			Pinned:      k.Pinned,
		}
	}
	return out
}
