package djl

import (
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
)

// TestBudgetFormula: (2k − (l+1))/r.
func TestBudgetFormula(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{K: 40, R: 1, L: 0}, 79},
		{Config{K: 40, R: 2, L: 0}, 39},
		{Config{K: 40, R: 1, L: 10}, 69},
		{Config{K: 1, R: 4, L: 5}, 0}, // negative clamps to zero
	}
	for _, c := range cases {
		a, err := New(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Budget() != c.want {
			t.Errorf("budget(%+v) = %d, want %d", c.cfg, a.Budget(), c.want)
		}
	}
}

// TestInvalidConfig rejected.
func TestInvalidConfig(t *testing.T) {
	for _, cfg := range []Config{{K: 0, R: 1}, {K: 1, R: 0}, {K: 1, R: 1, L: -1}} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestRestrictions: size, overlap, budget, repeats.
func TestRestrictions(t *testing.T) {
	a, err := New(Config{K: 3, R: 1, L: 0})
	if err != nil {
		t.Fatal(err)
	}
	answerOrFail := func(set ...int) {
		t.Helper()
		q := query.New(query.Sum, set...)
		d, err := a.Decide(q)
		if err != nil || d != audit.Answer {
			t.Fatalf("query %v: %v %v", set, d, err)
		}
		a.Record(q, 0)
	}
	// Too small.
	if d, _ := a.Decide(query.New(query.Sum, 0, 1)); d != audit.Deny {
		t.Fatal("undersized query must be denied")
	}
	answerOrFail(0, 1, 2)
	// Overlap 2 with the first: denied.
	if d, _ := a.Decide(query.New(query.Sum, 1, 2, 3)); d != audit.Deny {
		t.Fatal("overlap > r must be denied")
	}
	// Overlap 1: fine.
	answerOrFail(2, 3, 4)
	// Exact repeat: free.
	if d, _ := a.Decide(query.New(query.Sum, 0, 1, 2)); d != audit.Answer {
		t.Fatal("repeat must be answered")
	}
	// Budget = (6−1)/1 = 5; three more distinct disjoint-ish queries…
	answerOrFail(5, 6, 7)
	answerOrFail(8, 9, 10)
	answerOrFail(11, 12, 13)
	// …then the budget is spent.
	if a.Budget() != 0 {
		t.Fatalf("budget = %d, want 0", a.Budget())
	}
	if d, _ := a.Decide(query.New(query.Sum, 14, 15, 16)); d != audit.Deny {
		t.Fatal("budget exhausted: deny")
	}
}
