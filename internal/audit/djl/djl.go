// Package djl implements the Dobkin–Jones–Lipton / Reiss query-overlap
// restriction auditor the paper recounts in Section 2.1: every query set
// must have size ≥ k, every pair of answered query sets may overlap in at
// most r elements, and at most (2k − (l+1))/r distinct queries are ever
// answered, where l is the number of values assumed known to the attacker
// a priori.
//
// The scheme is the historical baseline motivating auditors with better
// utility: with k = n/c and r = 1 it exhausts after a constant number of
// distinct queries. It is trivially simulatable — decisions depend only
// on query sets.
package djl

import (
	"fmt"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
)

// Config holds the restriction parameters.
type Config struct {
	// K is the minimum query-set size.
	K int
	// R is the maximum pairwise overlap between answered query sets.
	R int
	// L is the number of data values assumed already known to the
	// attacker (l in the (2k−(l+1))/r bound).
	L int
}

// Auditor enforces the size/overlap restrictions.
type Auditor struct {
	cfg      Config
	answered []query.Set
	budget   int
}

// New returns a DJL auditor. The answer budget is ⌊(2k−(l+1))/r⌋ distinct
// queries, the bound under which the scheme provably prevents
// compromise.
func New(cfg Config) (*Auditor, error) {
	if cfg.K < 1 || cfg.R < 1 || cfg.L < 0 {
		return nil, fmt.Errorf("djl: invalid config %+v", cfg)
	}
	budget := (2*cfg.K - (cfg.L + 1)) / cfg.R
	if budget < 0 {
		budget = 0
	}
	return &Auditor{cfg: cfg, budget: budget}, nil
}

// Name implements audit.Auditor.
func (a *Auditor) Name() string { return "dobkin-jones-lipton" }

// Budget returns how many more distinct queries can be answered.
func (a *Auditor) Budget() int { return a.budget - len(a.answered) }

// Decide implements audit.Auditor: any aggregate is accepted (the scheme
// restricts only query sets), and a query is allowed iff it meets the
// size bound, overlaps every answered set in at most r elements, and the
// distinct-query budget is not exhausted. Repeats of already-answered
// sets are free.
func (a *Auditor) Decide(q query.Query) (audit.Decision, error) {
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("djl: empty query set")
	}
	for _, prev := range a.answered {
		if prev.Equal(q.Set) {
			return audit.Answer, nil // exact repeat: no new information
		}
	}
	if len(q.Set) < a.cfg.K {
		return audit.Deny, nil
	}
	if len(a.answered) >= a.budget {
		return audit.Deny, nil
	}
	for _, prev := range a.answered {
		if len(prev.Intersect(q.Set)) > a.cfg.R {
			return audit.Deny, nil
		}
	}
	return audit.Answer, nil
}

// Record implements audit.Auditor.
func (a *Auditor) Record(q query.Query, _ float64) {
	for _, prev := range a.answered {
		if prev.Equal(q.Set) {
			return
		}
	}
	a.answered = append(a.answered, q.Set.Clone())
}
