// Package audit defines the online-auditing contract shared by every
// auditor in this library.
//
// The central interface, Auditor, is *simulatable by construction*
// (Section 2.2): Decide receives only the new query — never its true
// answer — plus whatever the auditor retained about previously *answered*
// queries. An attacker who knows the query stream and past answers can
// therefore run the same code and predict every denial, so denials leak
// nothing.
//
// Non-simulatable auditors (the naive baselines whose denials the paper
// shows to leak) implement AnswerDependent instead, and the engine feeds
// them the true answer; they exist to reproduce the attack that motivates
// simulatability and must never be used to protect real data.
package audit

import (
	"errors"

	"queryaudit/internal/query"
)

// Decision is the outcome of auditing one query.
type Decision int

const (
	// Deny refuses the query.
	Deny Decision = iota
	// Answer releases the true aggregate.
	Answer
)

// String returns "answer" or "deny".
func (d Decision) String() string {
	if d == Answer {
		return "answer"
	}
	return "deny"
}

// ErrUnsupportedKind is returned (or wrapped) when a query's aggregate is
// outside the auditor's supported class.
var ErrUnsupportedKind = errors.New("audit: unsupported aggregate kind for this auditor")

// Auditor is a simulatable online auditor. Implementations keep their own
// state about the answered history and are NOT safe for concurrent use —
// core.Engine serializes the Decide/Record protocol under one lock.
// The engine drives the protocol:
//
//	d, err := a.Decide(q)          // true answer NOT available here
//	if d == Answer {
//	    ans := dataset.Eval(q)
//	    a.Record(q, ans)           // answer revealed only after commit
//	}
type Auditor interface {
	// Name identifies the auditor in logs and experiment output.
	Name() string
	// Decide chooses whether q may be answered, based only on the
	// answered history and q itself. An error indicates the query is
	// malformed or unsupported (distinct from a privacy denial).
	Decide(q query.Query) (Decision, error)
	// Record commits the released answer for q to the auditor's state.
	// It must only be called after Decide(q) returned Answer.
	Record(q query.Query, answer float64)
}

// AnswerDependent is implemented by non-simulatable auditors that inspect
// the true answer before deciding. Only the naive baselines do this.
type AnswerDependent interface {
	// Name identifies the auditor.
	Name() string
	// DecideWithAnswer chooses using the true answer — the unsafe
	// behaviour Section 2.2's example shows to leak via denials.
	DecideWithAnswer(q query.Query, trueAnswer float64) (Decision, error)
	// Record commits a released answer.
	Record(q query.Query, answer float64)
}

// UpdateObserver is implemented by auditors that support database updates
// (Sections 5–6): the engine notifies them when a record's sensitive
// value is modified, so stale constraints can be retired.
type UpdateObserver interface {
	// NoteUpdate reports that record idx was modified (its version grew).
	NoteUpdate(idx int)
}

// ElementKnowledge summarizes what the answered history lets an attacker
// derive about one element — the per-record privacy exposure a DBA wants
// to inspect.
type ElementKnowledge struct {
	// Index is the record index.
	Index int `json:"index"`
	// Lower/Upper bound the value; ±Inf mean unbounded. The strictness
	// flags distinguish x > L from x ≥ L.
	Lower       float64 `json:"lower"`
	Upper       float64 `json:"upper"`
	LowerStrict bool    `json:"lower_strict"`
	UpperStrict bool    `json:"upper_strict"`
	// Pinned reports classical compromise: the value is determined.
	Pinned bool `json:"pinned"`
}

// KnowledgeReporter is implemented by auditors that can enumerate the
// per-element exposure of their committed trail.
type KnowledgeReporter interface {
	// Knowledge returns one entry per record, in index order.
	Knowledge() []ElementKnowledge
}

// Log is a minimal helper most auditors embed: the ordered answered
// history (queries that were actually answered, with their answers).
type Log struct {
	answered []query.Answered
}

// Append records one released answer.
func (l *Log) Append(q query.Query, answer float64) {
	l.answered = append(l.answered, query.Answered{Query: q, Answer: answer})
}

// Answered returns the answered history (shared backing array; callers
// must not mutate).
func (l *Log) Answered() []query.Answered { return l.answered }

// Len returns the number of answered queries.
func (l *Log) Len() int { return len(l.answered) }
