// Package maxdup implements the simulatable max auditor of
// [Kenthapadi–Mishra–Nissim '05] in its original *duplicates-allowed*
// setting — the algorithm the paper's Figure 3 experiment actually ran.
// (The paper's own Section 4 auditor assumes no duplicates and is
// strictly more conservative; this package provides the comparator so
// both denial curves can be regenerated side by side.)
//
// With duplicates allowed, the knowledge from a history of answered max
// queries is captured by per-element upper bounds μ_j = min{a_k : j∈Q_k}
// and, per query, its extreme set E_k = {j ∈ Q_k : μ_j = a_k}. The
// history is consistent iff every E_k is nonempty (set x_j = μ_j), and
// some value is uniquely determined iff some E_k is a singleton. No
// cross-query inference beyond the bounds exists — precisely because
// duplicates are allowed.
//
// Simulatable decision, closed form. For a new query Q with hypothetical
// answer a, only two step functions of a matter:
//
//   - the new query's own extreme count |{j ∈ Q : μ_j ≥ a}| — it is 1
//     exactly when a lies in (m2, m1], where m1 ≥ m2 are the two largest
//     bounds in Q;
//   - each old query k that shares current extreme elements with Q loses
//     them all iff a < a_k (their bounds drop below a_k), leaving
//     c_k − o_k elements, where o_k = |E_k ∩ Q|.
//
// Writing L0 = max{a_k : c_k − o_k = 0} (answers below which the history
// becomes inconsistent) and L1 = max{a_k : c_k − o_k = 1}, the query is
// denied iff some consistent a compromises:
//
//	deny ⟺ [L0 < L1]  ∨  [max(L0, m2) < m1].
package maxdup

import (
	"fmt"
	"math"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
)

type answered struct {
	set query.Set
	ans float64
	// extremeCount = |E_k| under current bounds.
	extremeCount int
}

// Auditor is the duplicates-allowed simulatable max auditor.
type Auditor struct {
	n       int
	queries []answered
	// byElem[j] lists indices into queries containing element j.
	byElem [][]int
	// mu[j] is the current upper bound of element j (+Inf when free).
	mu []float64
}

// New returns an auditor over n records (duplicates permitted).
func New(n int) *Auditor {
	a := &Auditor{n: n, byElem: make([][]int, n), mu: make([]float64, n)}
	for i := range a.mu {
		a.mu[i] = math.Inf(1)
	}
	return a
}

// Name implements audit.Auditor.
func (a *Auditor) Name() string { return "max-full-disclosure-duplicates" }

// N returns the number of records.
func (a *Auditor) N() int { return a.n }

// Decide implements audit.Auditor using the closed form above.
func (a *Auditor) Decide(q query.Query) (audit.Decision, error) {
	if q.Kind != query.Max {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("maxdup: empty query set")
	}
	for _, j := range q.Set {
		if j < 0 || j >= a.n {
			return audit.Deny, fmt.Errorf("maxdup: index %d out of range", j)
		}
	}
	// m1 ≥ m2: the two largest bounds within Q.
	m1, m2 := math.Inf(-1), math.Inf(-1)
	for _, j := range q.Set {
		switch {
		case a.mu[j] > m1:
			m1, m2 = a.mu[j], m1
		case a.mu[j] > m2:
			m2 = a.mu[j]
		}
	}
	// o_k = |E_k ∩ Q| per old query sharing extreme elements with Q.
	overlap := make(map[int]int)
	for _, j := range q.Set {
		for _, k := range a.byElem[j] {
			if a.mu[j] == a.queries[k].ans { //auditlint:allow floateq answers are copied dataset values; equality-with-mu is exact set membership, not arithmetic
				overlap[k]++
			}
		}
	}
	l0, l1 := math.Inf(-1), math.Inf(-1)
	for k, o := range overlap {
		switch a.queries[k].extremeCount - o {
		case 0:
			if v := a.queries[k].ans; v > l0 {
				l0 = v
			}
		case 1:
			if v := a.queries[k].ans; v > l1 {
				l1 = v
			}
		}
	}
	// Consistent answers are a ≥ L0 (and a ≤ m1, vacuous below).
	// Compromise region 1: a < L1 strips some old query to one witness.
	if l0 < l1 {
		return audit.Deny, nil
	}
	// Compromise region 2: a ∈ (max(L0, m2), m1] leaves the new query
	// itself a single witness.
	if math.Max(l0, m2) < m1 {
		return audit.Deny, nil
	}
	return audit.Answer, nil
}

// Record implements audit.Auditor: lower bounds, shrink extreme sets,
// append the new query.
func (a *Auditor) Record(q query.Query, ans float64) {
	for _, j := range q.Set {
		if a.mu[j] > ans {
			// j leaves the extreme set of every query it was extreme in.
			for _, k := range a.byElem[j] {
				if a.queries[k].ans == a.mu[j] { //auditlint:allow floateq answers are copied dataset values; equality-with-mu is exact set membership, not arithmetic
					a.queries[k].extremeCount--
				}
			}
			a.mu[j] = ans
		}
	}
	idx := len(a.queries)
	ext := 0
	for _, j := range q.Set {
		if a.mu[j] == ans { //auditlint:allow floateq answers are copied dataset values; equality-with-mu is exact set membership, not arithmetic
			ext++
		}
		a.byElem[j] = append(a.byElem[j], idx)
	}
	a.queries = append(a.queries, answered{set: q.Set.Clone(), ans: ans, extremeCount: ext})
}

// Compromised reports whether the committed history pins any value.
func (a *Auditor) Compromised() bool {
	for _, k := range a.queries {
		if k.extremeCount <= 1 {
			return true
		}
	}
	return false
}

// UpperBound returns element j's current bound (math.Inf(1) when free).
func (a *Auditor) UpperBound(j int) float64 { return a.mu[j] }

// CheckInvariants recomputes extreme counts from scratch and compares
// (property tests).
func (a *Auditor) CheckInvariants() error {
	for k, qk := range a.queries {
		ext := 0
		for _, j := range qk.set {
			if a.mu[j] == qk.ans { //auditlint:allow floateq answers are copied dataset values; equality-with-mu is exact set membership, not arithmetic
				ext++
			}
			if a.mu[j] > qk.ans {
				return fmt.Errorf("maxdup: μ[%d]=%g above answer %g of query %d", j, a.mu[j], qk.ans, k)
			}
		}
		if ext != qk.extremeCount {
			return fmt.Errorf("maxdup: query %d extremeCount=%d, actual %d", k, qk.extremeCount, ext)
		}
	}
	return nil
}

// Snapshot is a serializable image of the duplicates-allowed auditor:
// the answered query log (bounds and extreme counts are re-derived).
type Snapshot struct {
	N       int          `json:"n"`
	Queries []QueryImage `json:"queries"`
}

// QueryImage is one answered query in a Snapshot.
type QueryImage struct {
	Set    []int   `json:"set"`
	Answer float64 `json:"answer"`
}

// Snapshot captures the answered history.
func (a *Auditor) Snapshot() Snapshot {
	s := Snapshot{N: a.n}
	for _, q := range a.queries {
		s.Queries = append(s.Queries, QueryImage{Set: q.set, Answer: q.ans})
	}
	return s
}

// Restore replays the answered history into a fresh auditor.
func Restore(s Snapshot) (*Auditor, error) {
	if s.N < 0 {
		return nil, fmt.Errorf("maxdup: negative n in snapshot")
	}
	a := New(s.N)
	for _, qi := range s.Queries {
		set := query.NewSet(qi.Set...)
		if len(set) == 0 {
			return nil, fmt.Errorf("maxdup: empty query set in snapshot")
		}
		for _, i := range set {
			if i < 0 || i >= s.N {
				return nil, fmt.Errorf("maxdup: index %d out of range in snapshot", i)
			}
		}
		a.Record(query.Query{Set: set, Kind: query.Max}, qi.Answer)
	}
	if err := a.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("maxdup: snapshot invalid: %w", err)
	}
	return a, nil
}

// Knowledge implements audit.KnowledgeReporter: per-element upper bounds
// μ_j, with Pinned set when the element is some query's lone witness.
func (a *Auditor) Knowledge() []audit.ElementKnowledge {
	out := make([]audit.ElementKnowledge, a.n)
	lone := make(map[int]bool)
	for _, q := range a.queries {
		if q.extremeCount == 1 {
			for _, j := range q.set {
				if a.mu[j] == q.ans { //auditlint:allow floateq answers are copied dataset values; equality-with-mu is exact set membership, not arithmetic
					lone[j] = true
				}
			}
		}
	}
	for j := 0; j < a.n; j++ {
		out[j] = audit.ElementKnowledge{
			Index:  j,
			Lower:  math.Inf(-1),
			Upper:  a.mu[j],
			Pinned: lone[j],
		}
		if lone[j] {
			out[j].Lower = a.mu[j]
		}
	}
	return out
}
