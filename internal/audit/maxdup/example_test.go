package maxdup_test

import (
	"fmt"

	"queryaudit/internal/audit/maxdup"
	"queryaudit/internal/query"
)

// Example contrasts the duplicates-allowed auditor with the paper's §4
// example: after max{a,b,c}=9, the overlapping query max{a,d,e} is
// answerable here (if both answered 9, a duplicate — not a reveal —
// would explain it), whereas the no-duplicates auditor must deny it.
func Example() {
	a := maxdup.New(5)
	q1 := query.New(query.Max, 0, 1, 2)
	if d, _ := a.Decide(q1); d == 1 {
		a.Record(q1, 9)
	}
	d, _ := a.Decide(query.New(query.Max, 0, 3, 4))
	fmt.Println("overlapping query:", d)

	// But localizing probes stay denied: max{a,b} after max{a,b,c}=9
	// could reveal x_c.
	d, _ = a.Decide(query.New(query.Max, 0, 1))
	fmt.Println("subset probe:     ", d)
	// Output:
	// overlapping query: answer
	// subset probe:      deny
}
