package maxdup

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
)

// decideReference re-derives the decision by brute force: enumerate the
// finitely many candidate answers (distinct bounds in Q, midpoints,
// sentinels), fold each into a copy, and inspect every extreme set.
func decideReference(a *Auditor, q query.Set) audit.Decision {
	vals := map[float64]bool{}
	for _, j := range q {
		if !math.IsInf(a.mu[j], 1) {
			vals[a.mu[j]] = true
		}
	}
	var sorted []float64
	for v := range vals {
		sorted = append(sorted, v)
	}
	sort.Float64s(sorted)
	var cands []float64
	if len(sorted) == 0 {
		cands = []float64{0}
	} else {
		cands = append(cands, sorted[0]-1)
		for i, v := range sorted {
			cands = append(cands, v)
			if i+1 < len(sorted) {
				cands = append(cands, (v+sorted[i+1])/2)
			}
		}
		// Values above the top bound are inconsistent; values below all
		// bounds matter, and +∞-ish candidates only when free elements
		// exist.
		free := false
		for _, j := range q {
			if math.IsInf(a.mu[j], 1) {
				free = true
			}
		}
		if free {
			cands = append(cands, sorted[len(sorted)-1]+1)
		}
	}
	anyConsistent := false
	for _, cand := range cands {
		cp := clone(a)
		cp.Record(query.Query{Set: q, Kind: query.Max}, cand)
		consistent := true
		compromised := false
		for _, k := range cp.queries {
			if k.extremeCount == 0 {
				consistent = false
			}
			if k.extremeCount == 1 {
				compromised = true
			}
		}
		if !consistent {
			continue
		}
		anyConsistent = true
		if compromised {
			return audit.Deny
		}
	}
	if !anyConsistent {
		return audit.Deny
	}
	return audit.Answer
}

func clone(a *Auditor) *Auditor {
	c := New(a.n)
	copy(c.mu, a.mu)
	c.queries = make([]answered, len(a.queries))
	copy(c.queries, a.queries)
	for j := range a.byElem {
		c.byElem[j] = append([]int(nil), a.byElem[j]...)
	}
	return c
}

// TestSingletonDenied.
func TestSingletonDenied(t *testing.T) {
	a := New(4)
	if d, _ := a.Decide(query.New(query.Max, 2)); d != audit.Deny {
		t.Fatal("singleton must be denied")
	}
}

// TestFreshPairAnswered — wait: with one free element a huge answer pins
// it? With ≥2 free elements in Q no answer pins anything.
func TestFreshPairAnswered(t *testing.T) {
	a := New(4)
	if d, _ := a.Decide(query.New(query.Max, 0, 1)); d != audit.Answer {
		t.Fatal("fresh pair should be answered")
	}
}

// TestPaperDuplicatesExample: with duplicates allowed, max{a,b,c}=9 then
// max{a,d,e} is ANSWERABLE — the same history the no-duplicates auditor
// must refuse (Section 4's conservativeness example).
func TestPaperDuplicatesExample(t *testing.T) {
	a := New(5)
	q1 := query.New(query.Max, 0, 1, 2)
	if d, _ := a.Decide(q1); d != audit.Answer {
		t.Fatal("q1 should pass")
	}
	a.Record(q1, 9)
	if d, _ := a.Decide(query.New(query.Max, 0, 3, 4)); d != audit.Answer {
		t.Fatal("overlapping query must be answerable when duplicates are allowed")
	}
}

// TestSubsetProbeDenied: max(S)=M then max(S\{i}) localizes the witness
// when the probe's answer is lower — denied, duplicates or not.
func TestSubsetProbeDenied(t *testing.T) {
	a := New(3)
	q1 := query.New(query.Max, 0, 1, 2)
	a.Record(q1, 9)
	if d, _ := a.Decide(query.New(query.Max, 0, 1)); d != audit.Deny {
		t.Fatal("subset probe must be denied")
	}
}

// TestClosedFormMatchesReference: random streams, every decision.
func TestClosedFormMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(7)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(12)) // duplicates welcome
		}
		a := New(n)
		for step := 0; step < 18; step++ {
			var idx []int
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					idx = append(idx, i)
				}
			}
			if len(idx) == 0 {
				continue
			}
			q := query.New(query.Max, idx...)
			fast, err := a.Decide(q)
			if err != nil {
				t.Fatal(err)
			}
			ref := decideReference(a, q.Set)
			if fast != ref {
				t.Fatalf("trial %d step %d: fast=%v ref=%v (q=%v, mu=%v)", trial, step, fast, ref, q.Set, a.mu)
			}
			if fast == audit.Answer {
				a.Record(q, q.Eval(xs))
				if err := a.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if a.Compromised() {
					t.Fatalf("trial %d: compromised after answering %v", trial, q.Set)
				}
			}
		}
	}
}

// TestNeverCompromisesOnTruth: long random streams with duplicated data.
func TestNeverCompromisesOnTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(10)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		if trial%2 == 0 {
			// Force heavy duplication half the time.
			for i := range xs {
				xs[i] = float64(rng.Intn(3))
			}
		}
		a := New(n)
		for step := 0; step < 40; step++ {
			var idx []int
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					idx = append(idx, i)
				}
			}
			if len(idx) == 0 {
				continue
			}
			q := query.New(query.Max, idx...)
			if d, _ := a.Decide(q); d == audit.Answer {
				a.Record(q, q.Eval(xs))
			}
			if a.Compromised() {
				t.Fatalf("trial %d: compromise", trial)
			}
		}
	}
}
