package offline

// Offline auditing of *mixed* sum-and-max histories — the combination
// Section 2.1 recounts as NP-hard [Chin '86]. This solver is exact and
// deliberately exponential: it enumerates, for every max query, which
// element attains the bound (the witness), reduces each choice to a
// linear system, and analyzes the union of the resulting polyhedra with
// exact rational Fourier–Motzkin elimination. A limit guards the witness
// product; past it the caller is told the instance is too large rather
// than being given a wrong answer. Duplicates are allowed, matching
// Chin's setting: a max answer means some element equals it and the rest
// are ≤ it.

import (
	"fmt"
	"math/big"

	"queryaudit/internal/query"
)

// SumMaxResult reports the exact offline audit of a mixed history.
type SumMaxResult struct {
	// Consistent reports whether any dataset satisfies the history.
	Consistent bool
	// Determined maps element index → its uniquely determined value.
	Determined map[int]float64
	// FeasibleRegions counts witness assignments with non-empty regions
	// (diagnostics: the exponential part of the work).
	FeasibleRegions int
}

// ErrTooLarge reports that the witness space exceeds the caller's limit.
var ErrTooLarge = fmt.Errorf("offline: sum-and-max instance exceeds the enumeration limit (the problem is NP-hard)")

// AuditSumMax audits a history mixing Sum and Max queries over n real
// values (duplicates allowed). limit bounds the number of witness
// assignments enumerated (≤ 0 selects 10000).
func AuditSumMax(n int, history []query.Answered, limit int) (SumMaxResult, error) {
	if limit <= 0 {
		limit = 10000
	}
	type maxQ struct {
		set query.Set
		ans *big.Rat
	}
	var sums []query.Answered
	var maxes []maxQ
	for _, h := range history {
		switch h.Query.Kind {
		case query.Sum:
			sums = append(sums, h)
		case query.Max:
			maxes = append(maxes, maxQ{set: h.Query.Set, ans: ratOf(h.Answer)})
		default:
			return SumMaxResult{}, fmt.Errorf("offline: %w: %v", errUnsupported, h.Query.Kind)
		}
	}
	space := 1
	for _, m := range maxes {
		space *= m.set.Size()
		if space > limit {
			return SumMaxResult{}, ErrTooLarge
		}
	}

	// Shared constraints: sum equalities and the ≤ bounds of every max
	// query (witness equalities vary per assignment).
	base := newRatSystem(n)
	for _, h := range sums {
		row := make([]*big.Rat, n)
		for _, i := range h.Query.Set {
			row[i] = one()
		}
		base.addEquality(row, ratOf(h.Answer))
	}
	for _, m := range maxes {
		for _, i := range m.set {
			row := make([]*big.Rat, n)
			row[i] = one()
			base.addInequality(row, m.ans) // x_i ≤ M
		}
	}

	res := SumMaxResult{Determined: map[int]float64{}}
	// intervals[i] accumulates the union of per-region projections.
	type span struct {
		lo, hi   *big.Rat // nil = unbounded
		anything bool
	}
	spans := make([]span, n)

	witness := make([]int, len(maxes))
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(maxes) {
			sys := base.clone()
			for qi, m := range maxes {
				row := make([]*big.Rat, n)
				row[m.set[witness[qi]]] = one()
				sys.addEquality(row, m.ans)
			}
			feasible, err := sys.solve()
			if err != nil {
				return err
			}
			if !feasible {
				return nil
			}
			res.FeasibleRegions++
			for i := 0; i < n; i++ {
				lo, hi, err := sys.projection(i)
				if err != nil {
					return err
				}
				s := &spans[i]
				if !s.anything {
					s.lo, s.hi, s.anything = lo, hi, true
					continue
				}
				if lo == nil || (s.lo != nil && lo.Cmp(s.lo) < 0) {
					s.lo = lo
				}
				if hi == nil || (s.hi != nil && hi.Cmp(s.hi) > 0) {
					s.hi = hi
				}
			}
			return nil
		}
		for w := range maxes[k].set {
			witness[k] = w
			if err := rec(k + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return SumMaxResult{}, err
	}
	res.Consistent = res.FeasibleRegions > 0
	if res.Consistent {
		for i := 0; i < n; i++ {
			s := spans[i]
			if s.anything && s.lo != nil && s.hi != nil && s.lo.Cmp(s.hi) == 0 {
				v, _ := s.lo.Float64()
				res.Determined[i] = v
			}
		}
	}
	return res, nil
}

func ratOf(v float64) *big.Rat { return new(big.Rat).SetFloat64(v) }

func one() *big.Rat { return big.NewRat(1, 1) }

// ratSystem is a small exact linear system: equalities Ax = b and
// inequalities Cx ≤ d, analyzed by elimination.
type ratSystem struct {
	n     int
	eqs   []affine // Σ coef·x − rhs = 0
	ineqs []affine // Σ coef·x − rhs ≤ 0
}

// affine is Σ coef_i x_i compared against rhs.
type affine struct {
	coef []*big.Rat // nil entries mean 0
	rhs  *big.Rat
}

func (a affine) clone() affine {
	out := affine{coef: make([]*big.Rat, len(a.coef)), rhs: new(big.Rat).Set(a.rhs)}
	for i, c := range a.coef {
		if c != nil {
			out.coef[i] = new(big.Rat).Set(c)
		}
	}
	return out
}

func newRatSystem(n int) *ratSystem { return &ratSystem{n: n} }

func (s *ratSystem) clone() *ratSystem {
	out := &ratSystem{n: s.n}
	for _, e := range s.eqs {
		out.eqs = append(out.eqs, e.clone())
	}
	for _, q := range s.ineqs {
		out.ineqs = append(out.ineqs, q.clone())
	}
	return out
}

func (s *ratSystem) addEquality(coef []*big.Rat, rhs *big.Rat) {
	s.eqs = append(s.eqs, affine{coef: coef, rhs: rhs})
}

func (s *ratSystem) addInequality(coef []*big.Rat, rhs *big.Rat) {
	s.ineqs = append(s.ineqs, affine{coef: coef, rhs: rhs})
}

// fmLimit caps the inequality blowup of Fourier–Motzkin; instances this
// solver targets stay far below it.
const fmLimit = 20000

// reduce eliminates the equalities by Gaussian elimination, rewriting
// the inequalities over the free variables. It returns the substitution
// (expressing each variable as an affine function of free variables) or
// reports direct inconsistency (0 = nonzero).
func (s *ratSystem) reduce() (sub []affine, freeVars []int, consistent bool) {
	// sub[i]: x_i = Σ coef·x_free + rhs, initialized to identity.
	sub = make([]affine, s.n)
	for i := range sub {
		coef := make([]*big.Rat, s.n)
		coef[i] = one()
		sub[i] = affine{coef: coef, rhs: new(big.Rat)}
	}
	isFree := make([]bool, s.n)
	for i := range isFree {
		isFree[i] = true
	}
	// Substitute-and-pivot each equality in turn.
	for _, eq := range s.eqs {
		cur := substitute(eq, sub, s.n)
		pivot := -1
		for j, c := range cur.coef {
			if c != nil && c.Sign() != 0 {
				pivot = j
				break
			}
		}
		if pivot < 0 {
			if cur.rhs.Sign() != 0 {
				return nil, nil, false
			}
			continue // redundant
		}
		// x_pivot = (rhs − Σ_{j≠pivot} coef_j x_j) / coef_pivot.
		inv := new(big.Rat).Inv(cur.coef[pivot])
		expr := affine{coef: make([]*big.Rat, s.n), rhs: new(big.Rat).Mul(cur.rhs, inv)}
		for j, c := range cur.coef {
			if j == pivot || c == nil || c.Sign() == 0 {
				continue
			}
			m := new(big.Rat).Mul(c, inv)
			expr.coef[j] = m.Neg(m)
		}
		isFree[pivot] = false
		// Fold the new expression into every substitution.
		for i := range sub {
			sub[i] = substituteVar(sub[i], pivot, expr, s.n)
		}
	}
	for i, f := range isFree {
		if f {
			freeVars = append(freeVars, i)
		}
	}
	return sub, freeVars, true
}

// substitute rewrites an affine form through the substitution table.
func substitute(a affine, sub []affine, n int) affine {
	out := affine{coef: make([]*big.Rat, n), rhs: new(big.Rat).Set(a.rhs)}
	for j, c := range a.coef {
		if c == nil || c.Sign() == 0 {
			continue
		}
		// c · (sub[j].coef · x + sub[j].rhs), moving the constant to rhs
		// with flipped sign convention (rhs stays on the right side).
		for k, sc := range sub[j].coef {
			if sc == nil || sc.Sign() == 0 {
				continue
			}
			t := new(big.Rat).Mul(c, sc)
			if out.coef[k] == nil {
				out.coef[k] = t
			} else {
				out.coef[k].Add(out.coef[k], t)
			}
		}
		t := new(big.Rat).Mul(c, sub[j].rhs)
		out.rhs.Sub(out.rhs, t)
	}
	return out
}

// substituteVar replaces variable v inside a with expr.
func substituteVar(a affine, v int, expr affine, n int) affine {
	c := a.coef[v]
	if c == nil || c.Sign() == 0 {
		return a
	}
	out := affine{coef: make([]*big.Rat, n), rhs: new(big.Rat).Set(a.rhs)}
	for k, ac := range a.coef {
		if k == v || ac == nil || ac.Sign() == 0 {
			continue
		}
		out.coef[k] = new(big.Rat).Set(ac)
	}
	for k, ec := range expr.coef {
		if ec == nil || ec.Sign() == 0 {
			continue
		}
		t := new(big.Rat).Mul(c, ec)
		if out.coef[k] == nil {
			out.coef[k] = t
		} else {
			out.coef[k].Add(out.coef[k], t)
		}
	}
	t := new(big.Rat).Mul(c, expr.rhs)
	out.rhs.Add(out.rhs, t)
	return out
}

// fourierMotzkin eliminates the listed variables from the inequalities,
// returning the projected system or an error on blowup.
func fourierMotzkin(ineqs []affine, vars []int, n int) ([]affine, error) {
	cur := ineqs
	for _, v := range vars {
		var pos, neg, zero []affine
		for _, q := range cur {
			c := q.coef[v]
			switch {
			case c == nil || c.Sign() == 0:
				zero = append(zero, q)
			case c.Sign() > 0:
				pos = append(pos, q)
			default:
				neg = append(neg, q)
			}
		}
		next := zero
		for _, p := range pos {
			for _, m := range neg {
				// p: c_p x_v + rest_p ≤ rhs_p with c_p > 0 → x_v ≤ …
				// m: c_m x_v + rest_m ≤ rhs_m with c_m < 0 → x_v ≥ …
				// Combine: c_p·m − c_m·p eliminates x_v (signs chosen to
				// keep ≤ orientation).
				comb := affine{coef: make([]*big.Rat, n), rhs: new(big.Rat)}
				cp, cm := p.coef[v], m.coef[v]
				for k := 0; k < n; k++ {
					if k == v {
						continue
					}
					var t big.Rat
					if m.coef[k] != nil {
						t.Mul(cp, m.coef[k])
					}
					if p.coef[k] != nil {
						var u big.Rat
						u.Mul(cm, p.coef[k])
						t.Sub(&t, &u)
					}
					if t.Sign() != 0 {
						comb.coef[k] = new(big.Rat).Set(&t)
					}
				}
				var r1, r2 big.Rat
				r1.Mul(cp, m.rhs)
				r2.Mul(cm, p.rhs)
				comb.rhs.Sub(&r1, &r2)
				next = append(next, comb)
				if len(next) > fmLimit {
					return nil, fmt.Errorf("offline: Fourier–Motzkin blowup past %d inequalities", fmLimit)
				}
			}
		}
		cur = next
	}
	return cur, nil
}

// solve reports feasibility of the full system.
func (s *ratSystem) solve() (bool, error) {
	sub, freeVars, ok := s.reduce()
	if !ok {
		return false, nil
	}
	reduced := make([]affine, 0, len(s.ineqs))
	for _, q := range s.ineqs {
		reduced = append(reduced, substitute(q, sub, s.n))
	}
	proj, err := fourierMotzkin(reduced, freeVars, s.n)
	if err != nil {
		return false, err
	}
	for _, q := range proj {
		// All variables eliminated: 0 ≤ rhs must hold.
		if q.rhs.Sign() < 0 {
			return false, nil
		}
	}
	return true, nil
}

// projection returns the exact interval of variable i over the feasible
// region (nil bounds mean unbounded). Must be called on feasible systems.
func (s *ratSystem) projection(i int) (lo, hi *big.Rat, err error) {
	sub, freeVars, ok := s.reduce()
	if !ok {
		return nil, nil, fmt.Errorf("offline: projection of infeasible system")
	}
	// Pinned by the equalities alone?
	expr := sub[i]
	constant := true
	for _, c := range expr.coef {
		if c != nil && c.Sign() != 0 {
			constant = false
			break
		}
	}
	if constant {
		v := new(big.Rat).Set(expr.rhs)
		return v, new(big.Rat).Set(v), nil
	}
	// Keep only free variables; eliminate all of them from the system
	// augmented with ±(x_i − t) ≤ 0 encoded by treating t's coefficient
	// through a fresh slot: extend every affine by one column.
	n1 := s.n + 1
	extend := func(a affine) affine {
		out := affine{coef: make([]*big.Rat, n1), rhs: new(big.Rat).Set(a.rhs)}
		copy(out.coef, a.coef)
		return out
	}
	var sysT []affine
	for _, q := range s.ineqs {
		sysT = append(sysT, extend(substitute(q, sub, s.n)))
	}
	// x_i − t ≤ 0 and t − x_i ≤ 0 with x_i replaced by expr.
	up := extend(expr)
	up.coef[s.n] = big.NewRat(-1, 1)
	upRhs := new(big.Rat).Neg(expr.rhs)
	up.rhs = upRhs
	down := affine{coef: make([]*big.Rat, n1), rhs: new(big.Rat).Set(expr.rhs)}
	for k, c := range expr.coef {
		if c != nil && c.Sign() != 0 {
			down.coef[k] = new(big.Rat).Neg(c)
		}
	}
	down.coef[s.n] = big.NewRat(1, 1)
	sysT = append(sysT, up, down)

	proj, err := fourierMotzkin(sysT, freeVars, n1)
	if err != nil {
		return nil, nil, err
	}
	for _, q := range proj {
		c := q.coef[s.n]
		if c == nil || c.Sign() == 0 {
			continue
		}
		bound := new(big.Rat).Quo(q.rhs, c)
		if c.Sign() > 0 { // c·t ≤ rhs → t ≤ rhs/c
			if hi == nil || bound.Cmp(hi) < 0 {
				hi = bound
			}
		} else { // t ≥ rhs/c
			if lo == nil || bound.Cmp(lo) > 0 {
				lo = bound
			}
		}
	}
	return lo, hi, nil
}
