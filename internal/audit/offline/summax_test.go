package offline

import (
	"errors"
	"math/rand"
	"testing"

	"queryaudit/internal/query"
)

func sumQ(a float64, idx ...int) query.Answered {
	return query.Answered{Query: query.New(query.Sum, idx...), Answer: a}
}

func maxQ(a float64, idx ...int) query.Answered {
	return query.Answered{Query: query.New(query.Max, idx...), Answer: a}
}

// TestSumMaxHandCases checks the solver on analytically solvable mixes.
func TestSumMaxHandCases(t *testing.T) {
	// sum{a,b}=5, max{a,b}=3: witness a → (3,2); witness b → (2,3).
	// Consistent, nothing determined.
	r, err := AuditSumMax(2, []query.Answered{sumQ(5, 0, 1), maxQ(3, 0, 1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent || len(r.Determined) != 0 || r.FeasibleRegions != 2 {
		t.Fatalf("case1: %+v", r)
	}

	// sum{a,b}=6, max{a,b}=3: both must be exactly 3.
	r, err = AuditSumMax(2, []query.Answered{sumQ(6, 0, 1), maxQ(3, 0, 1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent || r.Determined[0] != 3 || r.Determined[1] != 3 {
		t.Fatalf("case2: %+v", r)
	}

	// sum{a,b}=10, max{a,b}=3: impossible (sum ≤ 6).
	r, err = AuditSumMax(2, []query.Answered{sumQ(10, 0, 1), maxQ(3, 0, 1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Consistent {
		t.Fatalf("case3 must be inconsistent: %+v", r)
	}

	// The NP-hard flavour: sum{a,b,c}=6, max{a,b}=3, max{b,c}=3:
	// if b=3 then a,c sum to 3 with both ≤3 — free; if a=3 and c=3 then
	// b=0. Union leaves everything undetermined.
	r, err = AuditSumMax(3, []query.Answered{sumQ(6, 0, 1, 2), maxQ(3, 0, 1), maxQ(3, 1, 2)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent || len(r.Determined) != 0 {
		t.Fatalf("case4: %+v", r)
	}

	// Forcing through the mix: sum{a,b}=4, max{a}=3 → a=3 pins b=1 even
	// though no sum subset isolates b.
	r, err = AuditSumMax(2, []query.Answered{sumQ(4, 0, 1), maxQ(3, 0)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Determined[0] != 3 || r.Determined[1] != 1 {
		t.Fatalf("case5: %+v", r)
	}
}

// TestSumMaxAgainstSumOnly: with no max queries the solver must agree
// with the polynomial sum auditor on random histories.
func TestSumMaxAgainstSumOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(7))
		}
		var hist []query.Answered
		for k := 0; k < 1+rng.Intn(4); k++ {
			var idx []int
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					idx = append(idx, i)
				}
			}
			if len(idx) == 0 {
				continue
			}
			q := query.New(query.Sum, idx...)
			hist = append(hist, query.Answered{Query: q, Answer: q.Eval(xs)})
		}
		got, err := AuditSumMax(n, hist, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Consistent {
			t.Fatalf("trial %d: true sum history inconsistent", trial)
		}
		want, err := AuditSum(n, hist)
		if err != nil {
			t.Fatal(err)
		}
		if (len(got.Determined) > 0) != want.Compromised {
			t.Fatalf("trial %d: summax determined=%v, sum auditor compromised=%v (hist=%v)",
				trial, got.Determined, want.Compromised, hist)
		}
		for _, i := range want.DeterminedIndices {
			if v, ok := got.Determined[i]; !ok || v != xs[i] {
				t.Fatalf("trial %d: element %d should be determined as %g, got %v", trial, i, xs[i], got.Determined)
			}
		}
	}
}

// TestSumMaxTruthHistories: mixed true histories are consistent, the
// true dataset lies inside every reported determination.
func TestSumMaxTruthHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(6))
		}
		var hist []query.Answered
		for k := 0; k < 1+rng.Intn(3); k++ {
			var idx []int
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					idx = append(idx, i)
				}
			}
			if len(idx) == 0 {
				continue
			}
			kind := query.Sum
			if rng.Intn(2) == 0 {
				kind = query.Max
			}
			q := query.Query{Set: query.NewSet(idx...), Kind: kind}
			hist = append(hist, query.Answered{Query: q, Answer: q.Eval(xs)})
		}
		r, err := AuditSumMax(n, hist, 0)
		if err != nil {
			t.Fatalf("trial %d: %v (hist=%v)", trial, err, hist)
		}
		if !r.Consistent {
			t.Fatalf("trial %d: true history inconsistent (hist=%v xs=%v)", trial, hist, xs)
		}
		for i, v := range r.Determined {
			if v != xs[i] {
				t.Fatalf("trial %d: x%d determined as %g but truth is %g (hist=%v)", trial, i, v, xs[i], hist)
			}
		}
	}
}

// TestSumMaxLimit: the enumeration guard fires.
func TestSumMaxLimit(t *testing.T) {
	var hist []query.Answered
	for k := 0; k < 10; k++ {
		hist = append(hist, maxQ(float64(k+1), 0, 1, 2, 3, 4))
	}
	_, err := AuditSumMax(5, hist, 100)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}
