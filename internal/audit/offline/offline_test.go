package offline

import (
	"math/rand"
	"testing"

	"queryaudit/internal/query"
)

// TestAuditMaxMinPaperExample: the Section 4 example offline — two max
// queries sharing one element with equal answers pin it.
func TestAuditMaxMinPaperExample(t *testing.T) {
	hist := []query.Answered{
		{Query: query.New(query.Max, 0, 1, 2), Answer: 9},
		{Query: query.New(query.Max, 0, 3, 4), Answer: 9},
	}
	r, err := AuditMaxMin(5, hist)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent || !r.Compromised {
		t.Fatalf("got %+v, want consistent+compromised", r)
	}
	if v, ok := r.Determined[0]; !ok || v != 9 {
		t.Fatalf("determined = %v, want x0 = 9", r.Determined)
	}
}

// TestAuditMaxMinInconsistent: tampered logs are flagged.
func TestAuditMaxMinInconsistent(t *testing.T) {
	hist := []query.Answered{
		{Query: query.New(query.Max, 0, 1), Answer: 5},
		{Query: query.New(query.Max, 2, 3), Answer: 5}, // disjoint, equal
	}
	r, err := AuditMaxMin(4, hist)
	if err != nil {
		t.Fatal(err)
	}
	if r.Consistent {
		t.Fatal("duplicate-requiring history must be inconsistent")
	}
}

// TestAuditMaxMinRejectsWrongKind.
func TestAuditMaxMinRejectsWrongKind(t *testing.T) {
	if _, err := AuditMaxMin(3, []query.Answered{{Query: query.New(query.Sum, 0, 1), Answer: 4}}); err == nil {
		t.Fatal("sum history must be rejected")
	}
}

// TestAuditSum: the classic 3-cycle solves all elements.
func TestAuditSum(t *testing.T) {
	hist := []query.Answered{
		{Query: query.New(query.Sum, 0, 1), Answer: 3},
		{Query: query.New(query.Sum, 1, 2), Answer: 6},
	}
	r, err := AuditSum(3, hist)
	if err != nil {
		t.Fatal(err)
	}
	if r.Compromised || r.Rank != 2 {
		t.Fatalf("two chained sums are safe: %+v", r)
	}
	hist = append(hist, query.Answered{Query: query.New(query.Sum, 0, 2), Answer: 5})
	r, err = AuditSum(3, hist)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Compromised || len(r.DeterminedIndices) != 3 {
		t.Fatalf("3-cycle must determine everything: %+v", r)
	}
}

// TestAuditSumRandomNeverFalsePositive: histories kept safe by the
// online auditor are classified safe offline too (the two share the
// compromise criterion).
func TestAuditSumRandomNeverFalsePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(6)
		var hist []query.Answered
		// Take the first n−1 linearly independent random queries — they
		// can never contain an elementary vector (uniform rows).
		for len(hist) < n-1 {
			var idx []int
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					idx = append(idx, i)
				}
			}
			if len(idx) < 2 {
				continue
			}
			hist = append(hist, query.Answered{Query: query.New(query.Sum, idx...), Answer: 0})
			r, err := AuditSum(n, hist)
			if err != nil {
				t.Fatal(err)
			}
			if r.Compromised {
				// Possible (singletons excluded but small sets can
				// combine); just ensure determinism of the report.
				if len(r.DeterminedIndices) == 0 {
					t.Fatal("compromised without determined indices")
				}
				hist = hist[:len(hist)-1]
			}
		}
	}
}
