// Package offline implements the *offline* auditing problem the paper
// recounts in Section 2.1 (after Chin '86): given a sequence of queries
// that have already been posed and truthfully answered, decide whether
// compromise has already occurred — and, for max/min bags, report
// exactly which elements are determined.
//
// The online auditors answer a harder question ("could any consistent
// answer compromise?"); offline auditing only inspects the one history
// that actually happened, so it reduces directly to the extreme-element
// analysis of Theorems 3–4 for max/min bags and to an elementary-vector
// test for sums.
package offline

import (
	"fmt"

	"queryaudit/internal/extreme"
	"queryaudit/internal/field"
	"queryaudit/internal/linalg"
	"queryaudit/internal/query"
)

// MaxMinResult reports the offline audit of a max/min history.
type MaxMinResult struct {
	// Consistent is false when the claimed answers admit no duplicate-
	// free dataset (someone tampered with the log, or the answers were
	// not produced by one database).
	Consistent bool
	// Compromised reports whether some element is uniquely determined.
	Compromised bool
	// Determined maps element index → the value the history pins it to.
	Determined map[int]float64
	// Extremes[i] is the surviving witness set of the i-th answered
	// query, in input order.
	Extremes []query.Set
}

// AuditMaxMin audits an answered max/min history over n duplicate-free
// elements.
func AuditMaxMin(n int, history []query.Answered) (MaxMinResult, error) {
	cons := make([]extreme.Constraint, 0, len(history))
	for _, h := range history {
		switch h.Query.Kind {
		case query.Max, query.Min:
			cons = append(cons, extreme.Constraint{
				Set:   h.Query.Set,
				Value: h.Answer,
				IsMax: h.Query.Kind == query.Max,
				Rel:   extreme.RelEq,
			})
		default:
			return MaxMinResult{}, fmt.Errorf("offline: %w: %v", errUnsupported, h.Query.Kind)
		}
	}
	res := extreme.Analyze(n, cons)
	return MaxMinResult{
		Consistent:  res.Consistent,
		Compromised: res.Compromised,
		Determined:  res.Pinned,
		Extremes:    res.Extremes,
	}, nil
}

var errUnsupported = fmt.Errorf("unsupported aggregate for offline auditing")

// SumResult reports the offline audit of a sum history.
type SumResult struct {
	// Compromised reports whether some x_i is determined by the answered
	// sums (an elementary vector lies in the row space).
	Compromised bool
	// DeterminedIndices lists the solvable elements.
	DeterminedIndices []int
	// Rank is the dimension of the answered query span.
	Rank int
}

// AuditSum audits an answered sum history over n elements. Only the
// query sets matter: classical sum compromise is a property of the
// row space.
func AuditSum(n int, history []query.Answered) (SumResult, error) {
	f := field.GF61{}
	ech := linalg.NewEchelon[field.Elem61](f, n)
	for _, h := range history {
		if h.Query.Kind != query.Sum {
			return SumResult{}, fmt.Errorf("offline: %w: %v", errUnsupported, h.Query.Kind)
		}
		ech.Add(linalg.VectorFromSupport[field.Elem61](f, n, h.Query.Set))
	}
	cols := ech.ElementaryColumns()
	return SumResult{
		Compromised:       len(cols) > 0,
		DeterminedIndices: cols,
		Rank:              ech.Rank(),
	}, nil
}
