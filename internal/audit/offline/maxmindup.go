package offline

// Offline max-and-min auditing WITH duplicates — the problem the paper
// leaves open ("finding an efficient algorithm that works in the
// presence of duplicates is an interesting avenue for future work",
// §4). No polynomial algorithm is known: the paper shows duplicate
// values let answered queries imply *new* query sets (its
// max{a,b}=9, max{c,d}=9, min{b,d}=1 example forces max{a,c}=9), so the
// synopsis compression breaks down. This solver explores the problem at
// small scale the same way AuditSumMax does: enumerate witnesses per
// query, reduce each assignment to a linear system over the reals, and
// analyze the union of polyhedra exactly.

import (
	"math/big"

	"queryaudit/internal/query"
)

// AuditMaxMinDuplicates audits a history of Max and Min queries over n
// real values where duplicates ARE allowed (contrast AuditMaxMin, which
// assumes them away and gains polynomial time). limit bounds the witness
// enumeration (≤ 0 selects 10000).
func AuditMaxMinDuplicates(n int, history []query.Answered, limit int) (SumMaxResult, error) {
	if limit <= 0 {
		limit = 10000
	}
	type extQ struct {
		set   query.Set
		ans   *big.Rat
		isMax bool
	}
	var qs []extQ
	for _, h := range history {
		switch h.Query.Kind {
		case query.Max, query.Min:
			qs = append(qs, extQ{set: h.Query.Set, ans: ratOf(h.Answer), isMax: h.Query.Kind == query.Max})
		default:
			return SumMaxResult{}, errUnsupported
		}
	}
	space := 1
	for _, q := range qs {
		space *= q.set.Size()
		if space > limit {
			return SumMaxResult{}, ErrTooLarge
		}
	}

	// Shared bounds: every member of a max query is ≤ its answer; every
	// member of a min query is ≥ its answer (−x ≤ −m).
	base := newRatSystem(n)
	for _, q := range qs {
		for _, i := range q.set {
			row := make([]*big.Rat, n)
			if q.isMax {
				row[i] = one()
				base.addInequality(row, q.ans)
			} else {
				row[i] = new(big.Rat).Neg(one())
				base.addInequality(row, new(big.Rat).Neg(q.ans))
			}
		}
	}

	res := SumMaxResult{Determined: map[int]float64{}}
	type span struct {
		lo, hi   *big.Rat
		anything bool
	}
	spans := make([]span, n)
	witness := make([]int, len(qs))
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(qs) {
			sys := base.clone()
			for qi, q := range qs {
				row := make([]*big.Rat, n)
				row[q.set[witness[qi]]] = one()
				sys.addEquality(row, q.ans)
			}
			feasible, err := sys.solve()
			if err != nil {
				return err
			}
			if !feasible {
				return nil
			}
			res.FeasibleRegions++
			for i := 0; i < n; i++ {
				lo, hi, err := sys.projection(i)
				if err != nil {
					return err
				}
				s := &spans[i]
				if !s.anything {
					s.lo, s.hi, s.anything = lo, hi, true
					continue
				}
				if lo == nil || (s.lo != nil && lo.Cmp(s.lo) < 0) {
					s.lo = lo
				}
				if hi == nil || (s.hi != nil && hi.Cmp(s.hi) > 0) {
					s.hi = hi
				}
			}
			return nil
		}
		for w := range qs[k].set {
			witness[k] = w
			if err := rec(k + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return SumMaxResult{}, err
	}
	res.Consistent = res.FeasibleRegions > 0
	if res.Consistent {
		for i := 0; i < n; i++ {
			s := spans[i]
			if s.anything && s.lo != nil && s.hi != nil && s.lo.Cmp(s.hi) == 0 {
				v, _ := s.lo.Float64()
				res.Determined[i] = v
			}
		}
	}
	return res, nil
}
