package offline_test

import (
	"fmt"

	"queryaudit/internal/audit/offline"
	"queryaudit/internal/query"
)

// ExampleAuditSum: the 3-cycle of pairwise sums solves every element.
func ExampleAuditSum() {
	hist := []query.Answered{
		{Query: query.New(query.Sum, 0, 1), Answer: 3},
		{Query: query.New(query.Sum, 1, 2), Answer: 6},
		{Query: query.New(query.Sum, 0, 2), Answer: 5},
	}
	r, _ := offline.AuditSum(3, hist)
	fmt.Println(r.Compromised, r.DeterminedIndices)
	// Output:
	// true [0 1 2]
}

// ExampleAuditMaxMin: the Section 4 overlap example offline.
func ExampleAuditMaxMin() {
	hist := []query.Answered{
		{Query: query.New(query.Max, 0, 1, 2), Answer: 9},
		{Query: query.New(query.Max, 0, 3, 4), Answer: 9},
	}
	r, _ := offline.AuditMaxMin(5, hist)
	fmt.Println(r.Compromised, r.Determined[0])
	// Output:
	// true 9
}

// ExampleAuditSumMax: mixing aggregates determines what neither could
// alone — the combination Chin proved NP-hard, solved exactly here.
func ExampleAuditSumMax() {
	hist := []query.Answered{
		{Query: query.New(query.Sum, 0, 1), Answer: 4},
		{Query: query.New(query.Max, 0), Answer: 3},
	}
	r, _ := offline.AuditSumMax(2, hist, 0)
	fmt.Println(r.Determined[0], r.Determined[1])
	// Output:
	// 3 1
}
