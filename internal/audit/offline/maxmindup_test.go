package offline

import (
	"math/rand"
	"testing"

	"queryaudit/internal/query"
)

func minQ(a float64, idx ...int) query.Answered {
	return query.Answered{Query: query.New(query.Min, idx...), Answer: a}
}

// TestDuplicatesPaperExample works the paper's own §4 duplicates
// example: max{a,b}=9, max{c,d}=9, min{b,d}=1. One of b,d is 1, so the
// *other pair's* max must cover 9 — the inferred query set the paper
// warns about. Nothing is determined yet (four symmetric scenarios),
// but the history is consistent, and adding min{a,c}=1 would force a
// contradiction with max{a,b}=max{c,d}=9? No: check the solver agrees
// with careful case analysis.
func TestDuplicatesPaperExample(t *testing.T) {
	hist := []query.Answered{
		maxQ(9, 0, 1), // max{a,b} = 9
		maxQ(9, 2, 3), // max{c,d} = 9
		minQ(1, 1, 3), // min{b,d} = 1
	}
	r, err := AuditMaxMinDuplicates(4, hist, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent {
		t.Fatalf("the paper's duplicates example is consistent: %+v", r)
	}
	if len(r.Determined) != 0 {
		t.Fatalf("nothing should be determined yet: %+v", r)
	}
	// The paper's inference: one of b,d equals 1, so max{a,c} = 9 is
	// implied. Append max{a,c}=5 — contradicting the implication — and
	// the solver must detect inconsistency.
	bad := append(append([]query.Answered{}, hist...), maxQ(5, 0, 2))
	r, err = AuditMaxMinDuplicates(4, bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Consistent {
		t.Fatalf("max{a,c}=5 contradicts the implied max{a,c}=9: %+v", r)
	}
	// Whereas max{a,c}=9 is consistent and — combined with min{b,d}=1 —
	// still leaves multiple scenarios.
	good := append(append([]query.Answered{}, hist...), maxQ(9, 0, 2))
	r, err = AuditMaxMinDuplicates(4, good, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent {
		t.Fatalf("max{a,c}=9 is the implied value: %+v", r)
	}
}

// TestDuplicatesAllowEqualAnswers: with duplicates, two disjoint max
// queries can share an answer — exactly what the no-duplicates analyses
// reject.
func TestDuplicatesAllowEqualAnswers(t *testing.T) {
	hist := []query.Answered{maxQ(9, 0, 1), maxQ(9, 2, 3)}
	r, err := AuditMaxMinDuplicates(4, hist, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent || len(r.Determined) != 0 {
		t.Fatalf("equal answers are fine with duplicates: %+v", r)
	}
	// The no-duplicates analysis rejects the same history.
	nodup, err := AuditMaxMin(4, hist)
	if err != nil {
		t.Fatal(err)
	}
	if nodup.Consistent {
		t.Fatal("no-duplicates analysis must reject disjoint equal answers")
	}
}

// TestDuplicatesSqueeze: max{a,b}=5 and min{a,b}=5 force BOTH to 5 —
// legal with duplicates, determined exactly.
func TestDuplicatesSqueeze(t *testing.T) {
	hist := []query.Answered{maxQ(5, 0, 1), minQ(5, 0, 1)}
	r, err := AuditMaxMinDuplicates(2, hist, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent || r.Determined[0] != 5 || r.Determined[1] != 5 {
		t.Fatalf("squeeze must determine both: %+v", r)
	}
}

// TestDuplicatesTruthHistories: true histories over data WITH duplicates
// are always consistent and every determination matches the truth.
func TestDuplicatesTruthHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(4)) // heavy duplication
		}
		var hist []query.Answered
		for k := 0; k < 1+rng.Intn(3); k++ {
			var idx []int
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					idx = append(idx, i)
				}
			}
			if len(idx) == 0 {
				continue
			}
			kind := query.Max
			if rng.Intn(2) == 0 {
				kind = query.Min
			}
			q := query.Query{Set: query.NewSet(idx...), Kind: kind}
			hist = append(hist, query.Answered{Query: q, Answer: q.Eval(xs)})
		}
		r, err := AuditMaxMinDuplicates(n, hist, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !r.Consistent {
			t.Fatalf("trial %d: true duplicated history inconsistent (hist=%v xs=%v)", trial, hist, xs)
		}
		for i, v := range r.Determined {
			if v != xs[i] {
				t.Fatalf("trial %d: x%d determined as %g, truth %g", trial, i, v, xs[i])
			}
		}
	}
}
