package boolrange_test

import (
	"fmt"

	"queryaudit/internal/audit/boolrange"
	"queryaudit/internal/query"
)

// ExampleOfflineAudit: two published range counts differing by one
// individual determine that individual's bit.
func ExampleOfflineAudit() {
	rangeQ := func(i, j int) query.Query {
		var idx []int
		for k := i; k <= j; k++ {
			idx = append(idx, k)
		}
		return query.New(query.Count, idx...)
	}
	hist := []query.Answered{
		{Query: rangeQ(0, 4), Answer: 3},
		{Query: rangeQ(0, 3), Answer: 2},
	}
	consistent, determined, _ := boolrange.OfflineAudit(5, hist)
	fmt.Println(consistent, determined)
	// Output:
	// true [4]
}
