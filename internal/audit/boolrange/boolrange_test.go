package boolrange

import (
	"math/rand"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
)

func rangeQuery(i, j int) query.Query {
	var idx []int
	for k := i; k <= j; k++ {
		idx = append(idx, k)
	}
	return query.New(query.Count, idx...)
}

func countOf(bits []int, q query.Query) float64 {
	c := 0
	for _, i := range q.Set {
		c += bits[i]
	}
	return float64(c)
}

// TestSingleBitDenied: a width-1 range is an immediate reveal.
func TestSingleBitDenied(t *testing.T) {
	a := New(5)
	if d, _ := a.Decide(rangeQuery(2, 2)); d != audit.Deny {
		t.Fatal("single-bit count must be denied")
	}
}

// TestNonContiguousRejected.
func TestNonContiguousRejected(t *testing.T) {
	a := New(5)
	if _, err := a.Decide(query.New(query.Count, 0, 2)); err == nil {
		t.Fatal("non-contiguous set must error")
	}
}

// TestSimulatableCollapse asserts the documented degeneracy: for boolean
// data under classical compromise, the simulatable online auditor denies
// every range, because the saturating candidate answers (count 0,
// count = width) are always consistent and always determine bits.
func TestSimulatableCollapse(t *testing.T) {
	a := New(6)
	for _, r := range [][2]int{{0, 1}, {0, 5}, {2, 4}, {3, 3}} {
		if d, _ := a.Decide(rangeQuery(r[0], r[1])); d != audit.Deny {
			t.Fatalf("range %v must be denied by the simulatable boolean auditor", r)
		}
	}
}

// TestOfflineAdjacentDifference: [1..3]=2 then [2..3]=1 reveals x_0
// offline (the auditor that sees true answers detects it).
func TestOfflineAdjacentDifference(t *testing.T) {
	bits := []int{1, 0, 1, 1}
	q1 := rangeQuery(0, 2)
	q2 := rangeQuery(1, 2)
	hist := []query.Answered{
		{Query: q1, Answer: countOf(bits, q1)},
		{Query: q2, Answer: countOf(bits, q2)},
	}
	consistent, det, err := OfflineAudit(4, hist)
	if err != nil || !consistent {
		t.Fatal(err)
	}
	if len(det) != 1 || det[0] != 0 {
		t.Fatalf("determined = %v, want [0]", det)
	}
}

// TestOfflineDisjointSafe: disjoint unsaturated ranges determine nothing.
func TestOfflineDisjointSafe(t *testing.T) {
	bits := []int{1, 0, 1, 1, 0, 1}
	var hist []query.Answered
	for _, r := range [][2]int{{0, 1}, {3, 4}} {
		q := rangeQuery(r[0], r[1])
		hist = append(hist, query.Answered{Query: q, Answer: countOf(bits, q)})
	}
	consistent, det, err := OfflineAudit(6, hist)
	if err != nil || !consistent {
		t.Fatal(err)
	}
	if len(det) != 0 {
		t.Fatalf("determined %v for a safe history", det)
	}
}

// TestOfflineAudit: determined bits and consistency classification.
func TestOfflineAudit(t *testing.T) {
	// History: count[1..3]=2, count[2..3]=1 over x_0..x_3 (1-based
	// ranges over prefix nodes). Difference gives x_1 exactly.
	hist := []query.Answered{
		{Query: rangeQuery(0, 2), Answer: 2},
		{Query: rangeQuery(1, 2), Answer: 1},
	}
	consistent, det, err := OfflineAudit(4, hist)
	if err != nil || !consistent {
		t.Fatalf("consistent history misclassified: %v %v", consistent, err)
	}
	if len(det) != 1 || det[0] != 0 {
		t.Fatalf("determined = %v, want [0]", det)
	}

	// Saturated count determines every bit in range.
	consistent, det, err = OfflineAudit(4, []query.Answered{{Query: rangeQuery(1, 3), Answer: 3}})
	if err != nil || !consistent {
		t.Fatal(err)
	}
	if len(det) != 3 {
		t.Fatalf("saturation must determine 3 bits, got %v", det)
	}

	// Contradictory counts are inconsistent.
	consistent, _, err = OfflineAudit(4, []query.Answered{
		{Query: rangeQuery(0, 2), Answer: 3},
		{Query: rangeQuery(0, 3), Answer: 1},
	})
	if err != nil || consistent {
		t.Fatal("contradiction not caught")
	}
}

// TestOfflineConsistencyOnTruth: true histories are always consistent.
func TestOfflineConsistencyOnTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 6 + rng.Intn(8)
		bits := make([]int, n)
		for i := range bits {
			bits[i] = rng.Intn(2)
		}
		var hist []query.Answered
		for step := 0; step < 10; step++ {
			i := rng.Intn(n)
			j := i + rng.Intn(n-i)
			q := rangeQuery(i, j)
			hist = append(hist, query.Answered{Query: q, Answer: countOf(bits, q)})
		}
		consistent, _, err := OfflineAudit(n, hist)
		if err != nil || !consistent {
			t.Fatalf("trial %d: true history ruled inconsistent (%v)", trial, err)
		}
	}
}

// TestOfflineMatchesBruteForce enumerates all boolean datasets on small
// instances and checks the difference-constraint determination against
// ground truth.
func TestOfflineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(5)
		bits := make([]int, n)
		for i := range bits {
			bits[i] = rng.Intn(2)
		}
		var hist []query.Answered
		for k := 0; k < 1+rng.Intn(4); k++ {
			i := rng.Intn(n)
			j := i + rng.Intn(n-i)
			q := rangeQuery(i, j)
			hist = append(hist, query.Answered{Query: q, Answer: countOf(bits, q)})
		}
		consistent, det, err := OfflineAudit(n, hist)
		if err != nil {
			t.Fatal(err)
		}
		if !consistent {
			t.Fatalf("trial %d: true history ruled inconsistent", trial)
		}
		want := bruteDetermined(n, hist)
		if !sameInts(det, want) {
			t.Fatalf("trial %d: determined %v, brute force %v (hist=%v bits=%v)", trial, det, want, hist, bits)
		}
	}
}

func bruteDetermined(n int, hist []query.Answered) []int {
	possible := make([]map[int]bool, n)
	for i := range possible {
		possible[i] = map[int]bool{}
	}
	total := 1 << n
	for mask := 0; mask < total; mask++ {
		ok := true
		for _, h := range hist {
			c := 0
			for _, idx := range h.Query.Set {
				c += (mask >> idx) & 1
			}
			if float64(c) != h.Answer {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := 0; i < n; i++ {
			possible[i][(mask>>i)&1] = true
		}
	}
	var det []int
	for i := 0; i < n; i++ {
		if len(possible[i]) == 1 {
			det = append(det, i)
		}
	}
	return det
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
