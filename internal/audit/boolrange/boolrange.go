// Package boolrange implements the specialization the paper's Section 7
// singles out as tractable: auditing *count queries over one-dimensional
// ranges of boolean data* ("how many individuals are between the ages of
// 15 and 25"), where the general boolean auditing problem is coNP-hard
// but the 1-D form has an efficient solution [Kleinberg–Papadimitriou–
// Raghavan].
//
// Model: x_1..x_n ∈ {0,1} sorted along a public dimension; a query is a
// contiguous range [i, j] answered with the count Σ_{k∈[i,j]} x_k.
// Writing S_k for the prefix sum x_1+…+x_k, an answered query pins the
// difference S_j − S_{i−1}, and booleanness adds the chain constraints
// 0 ≤ S_k − S_{k−1} ≤ 1. The whole history is therefore a difference-
// constraint system; its constraint graph has an edge u→v of weight w
// for every inequality S_v − S_u ≤ w. Standard facts about such systems
// (the constraint matrix is totally unimodular) give:
//
//   - the history is consistent iff the graph has no negative cycle;
//   - the feasible values of x_k = S_k − S_{k−1} form exactly the
//     integer interval [−dist(k→k−1), dist(k−1→k)];
//   - x_k is *determined* (classical compromise) iff that interval is a
//     single point.
//
// The online auditor is simulatable via the finite-candidate technique:
// a new range [i, j] has only |j−i+2| possible answers; deny iff some
// consistent candidate would determine a previously undetermined bit.
//
// A provable degeneracy worth knowing (and asserted by this package's
// tests): for *boolean* data under classical compromise, the simulatable
// online auditor denies every range. The saturating candidate answers —
// count 0 (all zeros) and count = width (all ones) — are always
// consistent with a fresh range and always determine its bits, so no
// range survives the candidate sweep. This mirrors the discussion in
// Kenthapadi–Mishra–Nissim '05 that classical simulatable auditing can
// collapse on discrete data, and is one of the motivations for the
// paper's partial-disclosure definition. The substantive functionality
// here is therefore OfflineAudit, the efficient 1-D offline auditor;
// Decide is provided for completeness and demonstrates the collapse.
package boolrange

import (
	"fmt"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
)

// edge is a difference constraint S_to − S_from ≤ w.
type edge struct {
	from, to int
	w        int
}

// Auditor audits 1-D boolean range counts over n bits (prefix nodes
// 0..n).
type Auditor struct {
	n     int
	edges []edge
}

// New returns an auditor over n boolean values.
func New(n int) *Auditor {
	a := &Auditor{n: n}
	// Chain constraints: 0 ≤ S_k − S_{k−1} ≤ 1.
	for k := 1; k <= n; k++ {
		a.edges = append(a.edges,
			edge{from: k - 1, to: k, w: 1}, // S_k ≤ S_{k−1} + 1
			edge{from: k, to: k - 1, w: 0}, // S_{k−1} ≤ S_k
		)
	}
	return a
}

// Name implements audit.Auditor.
func (a *Auditor) Name() string { return "bool-1d-range-count" }

// N returns the number of bits.
func (a *Auditor) N() int { return a.n }

// rangeOf validates that the query set is a contiguous range and returns
// its 1-based endpoints.
func rangeOf(s query.Set) (i, j int, err error) {
	if len(s) == 0 {
		return 0, 0, fmt.Errorf("boolrange: empty query set")
	}
	for k := 1; k < len(s); k++ {
		if s[k] != s[k-1]+1 {
			return 0, 0, fmt.Errorf("boolrange: query set %v is not a contiguous range", s)
		}
	}
	return s[0] + 1, s[len(s)-1] + 1, nil
}

// withConstraint returns the edge list extended by S_j − S_{i−1} = c.
func (a *Auditor) withConstraint(i, j, c int) []edge {
	out := make([]edge, len(a.edges), len(a.edges)+2)
	copy(out, a.edges)
	return append(out,
		edge{from: i - 1, to: j, w: c},  // S_j ≤ S_{i−1} + c
		edge{from: j, to: i - 1, w: -c}, // S_{i−1} ≤ S_j − c
	)
}

// bellmanFord returns single-source shortest distances over nodes
// 0..n, or ok=false when a negative cycle is reachable (infeasible
// system). Unreachable nodes get dist = maxInt (no bound).
func bellmanFord(n int, edges []edge, src int) (dist []int, ok bool) {
	const inf = int(^uint(0) >> 2)
	dist = make([]int, n+1)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for iter := 0; iter <= n; iter++ {
		changed := false
		for _, e := range edges {
			if dist[e.from] >= inf {
				continue
			}
			if d := dist[e.from] + e.w; d < dist[e.to] {
				dist[e.to] = d
				changed = true
			}
		}
		if !changed {
			return dist, true
		}
		if iter == n {
			return nil, false // still relaxing after n rounds: negative cycle
		}
	}
	return dist, true
}

// analyze returns consistency and the set of determined bit indices
// (0-based) for an edge list.
func analyze(n int, edges []edge) (consistent bool, determined []int) {
	// Feasibility: run from a virtual source by seeding all dists at 0
	// (equivalent to adding zero-weight edges from a super-source).
	const inf = int(^uint(0) >> 2)
	dist := make([]int, n+1)
	for iter := 0; iter <= n; iter++ {
		changed := false
		for _, e := range edges {
			if d := dist[e.from] + e.w; d < dist[e.to] {
				dist[e.to] = d
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter == n {
			return false, nil
		}
	}
	// Determination: x_k fixed iff dist(k−1→k) == −dist(k→k−1).
	// Cache SSSP runs per source node actually needed.
	distFrom := make(map[int][]int)
	get := func(src int) []int {
		if d, ok := distFrom[src]; ok {
			return d
		}
		d, ok := bellmanFord(n, edges, src)
		if !ok {
			return nil
		}
		distFrom[src] = d
		return d
	}
	for k := 1; k <= n; k++ {
		du := get(k - 1)
		dv := get(k)
		if du == nil || dv == nil {
			return false, nil
		}
		ub, lb := du[k], -dv[k-1]
		if ub >= inf || -lb >= inf {
			continue
		}
		if ub == lb {
			determined = append(determined, k-1)
		}
	}
	return true, determined
}

// Determined returns the currently determined bit indices (always empty
// after a run of correct online decisions; used by the offline API and
// tests).
func (a *Auditor) Determined() []int {
	_, det := analyze(a.n, a.edges)
	return det
}

// Decide implements audit.Auditor: deny iff some consistent candidate
// count would determine a bit.
func (a *Auditor) Decide(q query.Query) (audit.Decision, error) {
	if q.Kind != query.Count && q.Kind != query.Sum {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	i, j, err := rangeOf(q.Set)
	if err != nil {
		return audit.Deny, err
	}
	anyConsistent := false
	for c := 0; c <= j-i+1; c++ {
		edges := a.withConstraint(i, j, c)
		consistent, determined := analyze(a.n, edges)
		if !consistent {
			continue
		}
		anyConsistent = true
		if len(determined) > 0 {
			return audit.Deny, nil
		}
	}
	if !anyConsistent {
		return audit.Deny, nil // defensive: the true count is consistent
	}
	return audit.Answer, nil
}

// Record implements audit.Auditor.
func (a *Auditor) Record(q query.Query, answer float64) {
	i, j, err := rangeOf(q.Set)
	if err != nil {
		panic(fmt.Sprintf("boolrange: recording invalid query: %v", err))
	}
	c := int(answer)
	if float64(c) != answer || c < 0 || c > j-i+1 { //auditlint:allow floateq integrality check: boolean range counts are exact small integers
		panic(fmt.Sprintf("boolrange: impossible count %g for range [%d,%d]", answer, i, j))
	}
	a.edges = append(a.edges,
		edge{from: i - 1, to: j, w: c},
		edge{from: j, to: i - 1, w: -c},
	)
}

// OfflineAudit answers the offline question for a 1-D boolean range
// history: is it consistent, and which bits does it determine?
func OfflineAudit(n int, history []query.Answered) (consistent bool, determined []int, err error) {
	a := New(n)
	for _, h := range history {
		i, j, rerr := rangeOf(h.Query.Set)
		if rerr != nil {
			return false, nil, rerr
		}
		c := int(h.Answer)
		a.edges = append(a.edges,
			edge{from: i - 1, to: j, w: c},
			edge{from: j, to: i - 1, w: -c},
		)
	}
	consistent, determined = analyze(n, a.edges)
	return consistent, determined, nil
}
