package maxminprob

import (
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/coloring"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

func params() Params {
	return Params{
		Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 10,
		OuterSamples: 8, InnerSamples: 16, MixFactor: 2, Seed: 1,
	}
}

// TestValidate rejects bad parameters.
func TestValidate(t *testing.T) {
	bad := []Params{
		{Lambda: 0, Gamma: 4, Delta: 0.1, T: 5},
		{Lambda: 0.3, Gamma: 0, Delta: 0.1, T: 5},
		{Lambda: 0.3, Gamma: 4, Delta: 1, T: 5},
		{Lambda: 0.3, Gamma: 4, Delta: 0.1, T: 0},
	}
	for _, p := range bad {
		if _, err := New(5, p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

// TestSingletonDenied: singleton max and min queries are refused (Lemma 2
// pre-check: a one-color node violates the degree condition, and the
// posterior collapses regardless).
func TestSingletonDenied(t *testing.T) {
	a, err := New(10, params())
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := a.Decide(query.New(query.Max, 4)); d != audit.Deny {
		t.Fatal("singleton max must be denied")
	}
	if d, _ := a.Decide(query.New(query.Min, 4)); d != audit.Deny {
		t.Fatal("singleton min must be denied")
	}
}

// TestLargeFreshSetsAnswered: broad first queries are safe.
func TestLargeFreshSetsAnswered(t *testing.T) {
	n := 50
	a, err := New(n, params())
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if d, _ := a.Decide(query.New(query.Max, all...)); d != audit.Answer {
		t.Fatal("whole-set max should be answered")
	}
	a.Record(query.New(query.Max, all...), 0.98)
	if d, _ := a.Decide(query.New(query.Min, all...)); d != audit.Answer {
		t.Fatal("whole-set min should be answered after the max")
	}
}

// TestLemma2FallbackPaths: a min bag over two elements creates a
// 2-color node adjacent to the max node — Lemma 2's degree condition
// (2 ≥ 1 + 2) fails. With the enumeration fallback enabled (default)
// inference stays tractable and the decision comes from the posterior
// check (which denies such a revealing bag anyway); with the fallback
// disabled the query is denied outright, the paper's base behaviour.
func TestLemma2FallbackPaths(t *testing.T) {
	n := 50
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	qMax := query.New(query.Max, all...)
	qMin := query.New(query.Min, 0, 1)

	a, err := New(n, params())
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := a.Decide(qMax); d != audit.Answer {
		t.Fatal("first broad max should pass")
	}
	a.Record(qMax, 0.97)
	if !a.inferenceTractableForAllAnswers(qMin) {
		t.Fatal("small graphs must be tractable via enumeration")
	}
	if d, _ := a.Decide(qMin); d != audit.Deny {
		t.Fatal("a two-element min bag reveals too much: posterior check must deny")
	}

	// Fallback disabled (limit 1): outright denial at the pre-check.
	strict := params()
	strict.EnumerateLimit = 1
	b, err := New(n, strict)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := b.Decide(qMax); d != audit.Answer {
		t.Fatal("first broad max should pass")
	}
	b.Record(qMax, 0.97)
	if b.inferenceTractableForAllAnswers(qMin) {
		t.Fatal("with enumeration disabled the Lemma 2 violation must surface")
	}
	if d, _ := b.Decide(qMin); d != audit.Deny {
		t.Fatal("under-colored min bag must be denied outright")
	}
}

// TestSimulatableAgreement: two auditors with identical seeds and
// histories make identical decisions.
func TestSimulatableAgreement(t *testing.T) {
	n := 30
	a1, _ := New(n, params())
	a2, _ := New(n, params())
	rng := randx.New(2)
	for step := 0; step < 4; step++ {
		set := randx.SubsetSizeBetween(rng, n, 15, 30)
		kind := query.Max
		if step%2 == 1 {
			kind = query.Min
		}
		q := query.Query{Set: query.NewSet(set...), Kind: kind}
		d1, _ := a1.Decide(q)
		d2, _ := a2.Decide(q)
		if d1 != d2 {
			t.Fatalf("step %d: decisions diverged", step)
		}
		if d1 == audit.Answer {
			// Record a shared consistent answer drawn from an
			// independent sampler, so neither auditor's internal
			// random stream is perturbed asymmetrically.
			g, err := coloring.Build(a1.Synopsis())
			if err != nil {
				t.Fatal(err)
			}
			s, err := coloring.NewSampler(g, rng)
			if err != nil {
				t.Fatal(err)
			}
			s.Mix(3)
			ans := q.Eval(s.SampleDataset(rng))
			a1.Record(q, ans)
			a2.Record(q, ans)
		}
	}
}

// TestGameNoPanicsAndRecordsConsistent plays a short real game end to
// end: decisions never error, true answers always fold into the synopsis.
func TestGameNoPanicsAndRecordsConsistent(t *testing.T) {
	n := 24
	rng := randx.New(3)
	xs := randx.DuplicateFreeDataset(rng, n, 0, 1)
	a, err := New(n, params())
	if err != nil {
		t.Fatal(err)
	}
	answered := 0
	for round := 0; round < 6; round++ {
		kind := query.Max
		if round%2 == 1 {
			kind = query.Min
		}
		set := randx.SubsetSizeBetween(rng, n, n/2, n)
		q := query.Query{Set: query.NewSet(set...), Kind: kind}
		d, err := a.Decide(q)
		if err != nil {
			t.Fatal(err)
		}
		if d == audit.Answer {
			a.Record(q, q.Eval(xs))
			answered++
		}
	}
	if err := a.Synopsis().CheckInvariants(); err != nil {
		t.Fatalf("synopsis invariants: %v", err)
	}
}
