// Package maxminprob implements the paper's Section 3.2 contribution: a
// (λ, δ, γ, T)-private simulatable auditor for *bags* of max and min
// queries under partial disclosure, for datasets uniform on the
// duplicate-free points of [0,1]^n.
//
// Posterior inference runs through the graph-coloring reduction of
// Lemmas 1–3 (package coloring): witnesses of the equality predicates are
// sampled by the Markov chain, and conditioned on a coloring every
// remaining element is uniform on its synopsis range. The per-element
// posterior therefore decomposes as
//
//	P(x_i ∈ I | B) = Σ_v π_i(v)·1[A(v) ∈ I] + (1 − Σ_v π_i(v))·|R_i ∩ I|/|R_i|
//
// where π_i(v) is the probability that i is node v's witness — the only
// quantity the Monte Carlo has to estimate.
//
// The auditor additionally enforces Lemma 2's degree condition
// |S(v)| ≥ d_v + 2 by outright denial: if any answer consistent with the
// current synopsis could produce a graph violating the condition, the
// query is refused before any sampling happens (the finite candidate-
// answer technique of Section 4 makes this check effective).
//
// The outer Monte Carlo loop runs on the shared parallel engine
// (internal/mcpar): the coloring graph of the current synopsis is built
// once per decision and shared read-only, each worker keeps a reusable
// chain sampler and dataset buffers, and every outer sample draws from a
// counter-based stream keyed by (decision seed, sample index) so the
// decision is bit-identical at any worker count.
package maxminprob

import (
	"fmt"
	"math/rand"

	"queryaudit/internal/audit"
	"queryaudit/internal/coloring"
	"queryaudit/internal/interval"
	"queryaudit/internal/mcpar"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/synopsis"
)

// Params configure the (λ, δ, γ, T) game and the Monte Carlo effort.
type Params struct {
	// Lambda bounds the tolerated posterior/prior ratio drift (0<λ<1).
	Lambda float64
	// Gamma is the number of partition intervals of [0,1].
	Gamma int
	// Delta bounds the attacker's winning probability over T rounds.
	Delta float64
	// T is the number of game rounds.
	T int
	// OuterSamples is the number of hypothetical datasets per decision
	// (0 → a small default).
	OuterSamples int
	// InnerSamples is the number of colorings per posterior estimate
	// (0 → a small default).
	InnerSamples int
	// MixFactor is the constant in the O(k log k) mixing budget
	// (0 → 3).
	MixFactor float64
	// EnumerateLimit bounds the coloring-space size under which the
	// auditor switches from MCMC to exact enumeration — the paper's
	// fallback when Lemma 2's degree condition fails (0 → 20000).
	EnumerateLimit int
	// Workers bounds the parallel Monte Carlo pool per decision;
	// 0 = GOMAXPROCS, 1 = sequential. Decisions are identical at any
	// worker count for a fixed Seed.
	Workers int
	// Seed drives the auditor's randomness.
	Seed int64
	// AdaptiveAlpha, when positive, arms mcpar's variance-aware adaptive
	// sequential test: a decision stops early once its outcome is pinned
	// with confidence 1-AdaptiveAlpha. Zero (the default) keeps the exact
	// certificates only, which never change a decision.
	AdaptiveAlpha float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Lambda <= 0 || p.Lambda >= 1 {
		return fmt.Errorf("maxminprob: lambda must be in (0,1), got %g", p.Lambda)
	}
	if p.Gamma < 1 {
		return fmt.Errorf("maxminprob: gamma must be >= 1, got %d", p.Gamma)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("maxminprob: delta must be in (0,1), got %g", p.Delta)
	}
	if p.T < 1 {
		return fmt.Errorf("maxminprob: T must be >= 1, got %d", p.T)
	}
	return nil
}

func (p Params) outer() int {
	if p.OuterSamples > 0 {
		return p.OuterSamples
	}
	return 32
}

func (p Params) inner() int {
	if p.InnerSamples > 0 {
		return p.InnerSamples
	}
	return 48
}

func (p Params) mixFactor() float64 {
	if p.MixFactor > 0 {
		return p.MixFactor
	}
	return 3
}

func (p Params) enumerateLimit() int {
	if p.EnumerateLimit > 0 {
		return p.EnumerateLimit
	}
	return 20000
}

// Auditor is the Section 3.2 simulatable probabilistic max∧min auditor.
type Auditor struct {
	n      int
	params Params
	part   interval.Partition
	window interval.RatioWindow
	syn    *synopsis.MaxMin
	// decisions counts Decide calls; each decision derives its own base
	// seed from (params.Seed, decisions) so samples are fresh per decision
	// yet bit-reproducible across runs and worker counts.
	decisions uint64
	// mc observes per-decision Monte Carlo accounting (may be nil).
	mc            mcpar.Observer
	sched         *mcpar.Scheduler
	denyThreshold float64
}

// New returns an auditor over n records in [0,1].
func New(n int, params Params) (*Auditor, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Auditor{
		n:             n,
		params:        params,
		part:          interval.NewPartition(0, 1, params.Gamma),
		window:        interval.RatioWindow{Lambda: params.Lambda},
		syn:           synopsis.NewMaxMin(n, 0, 1),
		denyThreshold: params.Delta / (2 * float64(params.T)),
	}, nil
}

// SetWorkers adjusts the Monte Carlo pool size (0 = GOMAXPROCS).
func (a *Auditor) SetWorkers(n int) { a.params.Workers = n }

// SetMCObserver installs the per-decision Monte Carlo observer (nil
// disables).
func (a *Auditor) SetMCObserver(o mcpar.Observer) { a.mc = o }

// SetScheduler points the auditor's decisions at a shared assist pool
// (nil selects mcpar.Default()).
func (a *Auditor) SetScheduler(s *mcpar.Scheduler) { a.sched = s }

// Name implements audit.Auditor.
func (a *Auditor) Name() string { return "maxmin-partial-disclosure" }

// N returns the number of records.
func (a *Auditor) N() int { return a.n }

// Synopsis exposes a copy of the trail.
func (a *Auditor) Synopsis() *synopsis.MaxMin { return a.syn.Clone() }

// candidates mirrors the Algorithm 3 finite answer set, restricted to
// [0,1]: predicate values touching q plus representatives of the open
// intervals they delimit (collision-avoiding — see
// audit.CandidateAnswers), clipped to the data range.
func (a *Auditor) candidates(q query.Set) []float64 {
	// CandidateAnswers sorts and dedups, so duplicates are fine here —
	// and collecting into a slice (rather than a dedup map iterated in
	// random order) keeps the candidate stream deterministic.
	values := make([]float64, 0, 2*len(q)+2)
	values = append(values, 0, 1)
	for _, i := range q {
		if p, ok := a.syn.MaxPredOf(i); ok {
			values = append(values, p.Value)
		}
		if p, ok := a.syn.MinPredOf(i); ok {
			values = append(values, p.Value)
		}
	}
	all := audit.CandidateAnswers(values, a.syn.EqValues())
	out := all[:0]
	for _, v := range all {
		if v >= 0 && v <= 1 {
			out = append(out, v)
		}
	}
	return out
}

// inferenceTractableForAllAnswers reports whether posterior inference
// stays tractable for every consistent candidate answer: either the
// coloring graph meets Lemma 2's degree condition (MCMC mixes) or its
// coloring space is small enough for the exact-enumeration fallback the
// paper sketches. Queries failing both are denied outright, exactly as
// Section 3.2 prescribes.
func (a *Auditor) inferenceTractableForAllAnswers(q query.Query) bool {
	limit := a.params.enumerateLimit()
	for _, cand := range a.candidates(q.Set) {
		trial := a.syn.Clone()
		var err error
		if q.Kind == query.Max {
			err = trial.AddMax(q.Set, cand)
		} else {
			err = trial.AddMin(q.Set, cand)
		}
		if err != nil {
			continue // inconsistent answers cannot occur
		}
		g, gerr := coloring.Build(trial)
		if gerr != nil {
			return false
		}
		if !g.MeetsLemma2() && g.SpaceSize(limit) >= limit {
			return false
		}
	}
	return true
}

// witnessProbs computes π_i(v) for a synopsis: exactly (by enumeration)
// when the graph is small or fails Lemma 2's ergodicity condition, by
// the Markov chain otherwise.
func witnessProbs(b *synopsis.MaxMin, params Params, rng *rand.Rand) (*coloring.Graph, [][]float64, error) {
	g, err := coloring.Build(b)
	if err != nil {
		return nil, nil, err
	}
	limit := params.enumerateLimit()
	if !g.MeetsLemma2() || g.SpaceSize(limit) < limit {
		if probs, ok := coloring.ExactWitnessProbs(g, limit); ok {
			return g, probs, nil
		}
		if !g.MeetsLemma2() {
			return nil, nil, fmt.Errorf("maxminprob: graph fails Lemma 2 and exceeds the enumeration limit")
		}
	}
	s, err := coloring.NewSampler(g, rng)
	if err != nil {
		return nil, nil, err
	}
	s.Mix(params.mixFactor()) // burn-in
	inner := params.inner()
	counts := make([][]float64, g.K())
	for v := range counts {
		counts[v] = make([]float64, len(g.Nodes[v].Colors))
	}
	thin := coloring.MixSteps(g.K(), params.mixFactor()/4+0.5)
	for it := 0; it < inner; it++ {
		for st := 0; st < thin; st++ {
			s.Step()
		}
		c := s.Current() // no-copy read; consumed before the next Step
		for v, col := range c {
			for ci, candidate := range g.Nodes[v].Colors {
				if candidate == col {
					counts[v][ci]++
					break
				}
			}
		}
	}
	for v := range counts {
		for ci := range counts[v] {
			counts[v][ci] /= float64(inner)
		}
	}
	return g, counts, nil
}

// safeState checks the λ-window for every element × interval given a
// synopsis state, using Monte Carlo witness probabilities drawn from rng.
func (a *Auditor) safeState(b *synopsis.MaxMin, rng *rand.Rand) (bool, error) {
	g, probs, err := witnessProbs(b, a.params, rng)
	if err != nil {
		return false, err
	}
	// Gather, per element, its witness probability mass per node value.
	type mass struct {
		value float64
		p     float64
	}
	witMass := make([][]mass, a.n)
	for v, node := range g.Nodes {
		for ci, col := range node.Colors {
			if probs[v][ci] > 0 {
				witMass[col] = append(witMass[col], mass{value: node.Value, p: probs[v][ci]})
			}
		}
	}
	prior := a.part.Prior()
	for i := 0; i < a.n; i++ {
		r := b.RangeOf(i)
		constrained := len(witMass[i]) > 0 || r.Lo > 0 || r.Hi < 1
		if !constrained {
			continue // posterior equals prior exactly
		}
		var witTotal float64
		for _, m := range witMass[i] {
			witTotal += m.p
		}
		free := 1 - witTotal
		iv := interval.Interval{Lo: r.Lo, Hi: r.Hi}
		for j := 1; j <= a.params.Gamma; j++ {
			cell := a.part.Cell(j)
			post := free * iv.OverlapFraction(cell)
			for _, m := range witMass[i] {
				//auditlint:allow floateq final partition cell is closed at beta; the exact-endpoint test mirrors interval.CellIndex
				if m.value >= cell.Lo && (m.value < cell.Hi || (j == a.params.Gamma && m.value == cell.Hi)) {
					post += m.p
				}
			}
			if !a.window.SafePosterior(post, prior) {
				return false, nil
			}
		}
	}
	return true, nil
}

// Decide implements audit.Auditor: Lemma 2 pre-check, then the sampled
// privacy estimate of the Section 3.2 simulatable auditor.
func (a *Auditor) Decide(q query.Query) (audit.Decision, error) {
	if q.Kind != query.Max && q.Kind != query.Min {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("maxminprob: empty query set")
	}
	for _, i := range q.Set {
		if i < 0 || i >= a.n {
			return audit.Deny, fmt.Errorf("maxminprob: index %d out of range", i)
		}
	}
	if !a.inferenceTractableForAllAnswers(q) {
		return audit.Deny, nil
	}
	// The coloring graph of the current synopsis is identical for every
	// outer sample: build it (and its deterministic starting coloring)
	// once per decision and share both read-only across the workers.
	g, err := coloring.Build(a.syn)
	if err != nil {
		return audit.Deny, err
	}
	init, err := g.InitialColoring()
	if err != nil {
		return audit.Deny, err
	}
	budget := a.params.outer()
	barrier := mcpar.DenyBarrier(budget, a.denyThreshold)
	seed := randx.DeriveSeed(a.params.Seed, a.decisions)
	a.decisions++
	out := mcpar.Vote(
		mcpar.Config{
			Workers:       a.params.Workers,
			Seed:          seed,
			Observer:      a.mc,
			Sched:         a.sched,
			AdaptiveAlpha: a.params.AdaptiveAlpha,
		},
		budget, barrier,
		func() *decideScratch {
			return &decideScratch{
				xs:    make([]float64, a.n),
				fixed: make([]bool, a.n),
			}
		},
		func(_ int, rng *rand.Rand, sc *decideScratch) bool {
			// Draw one dataset from P(X | B) via the coloring chain
			// (Lemma 1), reusing the worker's sampler rebased onto this
			// sample's random stream.
			if sc.sampler == nil {
				s, serr := coloring.NewSamplerFrom(g, rng, init)
				if serr != nil {
					return true
				}
				sc.sampler = s
			} else if sc.sampler.Reset(rng, init) != nil {
				return true
			}
			sc.sampler.Mix(a.params.mixFactor())
			sc.sampler.SampleDatasetInto(rng, sc.xs, sc.fixed)
			ans := q.Eval(sc.xs)
			trial := a.syn.Clone()
			var aerr error
			if q.Kind == query.Max {
				aerr = trial.AddMax(q.Set, ans)
			} else {
				aerr = trial.AddMin(q.Set, ans)
			}
			if aerr != nil {
				return true // sampled-consistent answers should fold cleanly
			}
			ok, serr := a.safeState(trial, rng)
			return serr != nil || !ok
		})
	if out.Exceeded {
		return audit.Deny, nil
	}
	return audit.Answer, nil
}

// decideScratch is the per-worker reusable state of Decide: the chain
// sampler over the shared decision graph plus the dataset buffers.
type decideScratch struct {
	sampler *coloring.Sampler
	xs      []float64
	fixed   []bool
}

// Record implements audit.Auditor.
func (a *Auditor) Record(q query.Query, answer float64) {
	var err error
	switch q.Kind {
	case query.Max:
		err = a.syn.AddMax(q.Set, answer)
	case query.Min:
		err = a.syn.AddMin(q.Set, answer)
	default:
		err = fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if err != nil {
		panic(fmt.Sprintf("maxminprob: recording true answer failed: %v", err))
	}
}

// MixSteps re-exports the chain budget for benchmarks.
func MixSteps(k int, factor float64) int { return coloring.MixSteps(k, factor) }
