package maxfull

import (
	"math/rand"
	"sort"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
)

// drive answers q against the true values, recording if allowed.
func drive(t *testing.T, a *Auditor, set query.Set, xs []float64) bool {
	t.Helper()
	q := query.Query{Set: set, Kind: query.Max}
	d, err := a.Decide(q)
	if err != nil {
		t.Fatalf("Decide(%v): %v", q, err)
	}
	if d == audit.Deny {
		return false
	}
	a.Record(q, q.Eval(xs))
	return true
}

// TestSingletonDenied: max over one element is the element.
func TestSingletonDenied(t *testing.T) {
	a := New(3)
	d, err := a.Decide(query.New(query.Max, 2))
	if err != nil || d != audit.Deny {
		t.Fatalf("got %v,%v; want deny", d, err)
	}
}

// TestFreshPairAnswered: a first query over ≥2 fresh elements is safe.
func TestFreshPairAnswered(t *testing.T) {
	a := New(3)
	if d, _ := a.Decide(query.New(query.Max, 0, 1)); d != audit.Answer {
		t.Fatal("fresh pair should be answered")
	}
}

// TestPaperConservativeExample: after max{a,b,c}=9, the query
// max{a,d,e} must be denied — if both answers were equal, x_a would be
// revealed (Section 4's no-duplicates example).
func TestPaperConservativeExample(t *testing.T) {
	xs := []float64{9, 1, 2, 3, 4}
	a := New(5)
	if !drive(t, a, query.NewSet(0, 1, 2), xs) {
		t.Fatal("first query should be answered")
	}
	if d, _ := a.Decide(query.New(query.Max, 0, 3, 4)); d != audit.Deny {
		t.Fatal("overlapping query must be denied (equal answers would reveal x_a)")
	}
}

// TestSubsetProbeDenied: after max(S) is answered, max(S\{i}) must be
// denied — the answer comparison would reveal whether x_i is the max.
func TestSubsetProbeDenied(t *testing.T) {
	xs := []float64{3, 7, 5}
	a := New(3)
	if !drive(t, a, query.NewSet(0, 1, 2), xs) {
		t.Fatal("first query should be answered")
	}
	for drop := 0; drop < 3; drop++ {
		set := query.NewSet(0, 1, 2).Minus(query.Set{drop})
		if d, _ := a.Decide(query.Query{Set: set, Kind: query.Max}); d != audit.Deny {
			t.Fatalf("probe without %d must be denied", drop)
		}
	}
}

// TestDisjointQueriesFlow: disjoint query sets never interfere.
func TestDisjointQueriesFlow(t *testing.T) {
	xs := []float64{3, 7, 5, 1, 9, 2}
	a := New(6)
	if !drive(t, a, query.NewSet(0, 1), xs) {
		t.Fatal("q1 denied")
	}
	if !drive(t, a, query.NewSet(2, 3), xs) {
		t.Fatal("q2 denied")
	}
	if !drive(t, a, query.NewSet(4, 5), xs) {
		t.Fatal("q3 denied")
	}
	if a.Compromised() {
		t.Fatal("no compromise expected")
	}
}

// TestFastMatchesReference drives random streams and checks the
// closed-form decision equals the clone-and-fold reference at every
// step, including after updates.
func TestFastMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(7)
		xs := distinctValues(rng, n)
		a := New(n)
		for step := 0; step < 20; step++ {
			set := randomSet(rng, n)
			q := query.Query{Set: set, Kind: query.Max}
			fast, err1 := a.Decide(q)
			ref, err2 := a.DecideReference(q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch: %v vs %v", err1, err2)
			}
			if fast != ref {
				t.Fatalf("trial %d step %d: fast=%v ref=%v\nsynopsis=%v\nquery=%v",
					trial, step, fast, ref, a.syn, set)
			}
			if fast == audit.Answer {
				a.Record(q, q.Eval(xs))
			}
			if a.Compromised() {
				t.Fatalf("trial %d: compromised state after answering %v", trial, set)
			}
			if rng.Intn(8) == 0 {
				i := rng.Intn(n)
				a.NoteUpdate(i)
				xs[i] = freshValue(rng, xs)
			}
		}
	}
}

// TestNeverLeaks runs long random streams and verifies no answered
// prefix ever uniquely determines an element (privacy invariant).
func TestNeverLeaks(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(8)
		xs := distinctValues(rng, n)
		a := New(n)
		for step := 0; step < 30; step++ {
			set := randomSet(rng, n)
			drive(t, a, set, xs)
			if a.Compromised() {
				t.Fatalf("trial %d step %d: compromise (synopsis %v)", trial, step, a.syn)
			}
		}
	}
}

func distinctValues(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	used := map[float64]bool{}
	for i := range xs {
		v := float64(rng.Intn(60))
		for used[v] {
			v = float64(rng.Intn(60))
		}
		used[v] = true
		xs[i] = v
	}
	return xs
}

func freshValue(rng *rand.Rand, xs []float64) float64 {
	used := map[float64]bool{}
	for _, x := range xs {
		used[x] = true
	}
	v := float64(rng.Intn(60))
	for used[v] {
		v = float64(rng.Intn(60))
	}
	return v
}

func randomSet(rng *rand.Rand, n int) query.Set {
	for {
		var q []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				q = append(q, i)
			}
		}
		if len(q) > 0 {
			sort.Ints(q)
			return query.Set(q)
		}
	}
}

// TestCandidatesShape: candidate list is sorted and brackets the values.
func TestCandidatesShape(t *testing.T) {
	a := New(5)
	xs := []float64{1, 5, 3, 8, 2}
	drive(t, a, query.NewSet(0, 1), xs) // =5
	drive(t, a, query.NewSet(2, 4), xs) // =3
	cands := a.Candidates(query.NewSet(0, 2))
	if len(cands) != 5 {
		t.Fatalf("candidates = %v, want [2,3,4,5,6]", cands)
	}
	want := []float64{2, 3, 4, 5, 6}
	for i, v := range want {
		if cands[i] != v {
			t.Fatalf("candidates = %v, want %v", cands, want)
		}
	}
}
