// Package maxfull implements the simulatable full-disclosure max auditor
// of [Kenthapadi–Mishra–Nissim '05] on top of the synopsis blackbox B,
// which compresses the audit trail to O(n) (Section 4, "no duplicates").
//
// Decision rule (simulatable — the true answer is never consulted): for
// the new query set Q, enumerate the finitely many answer candidates that
// matter (Theorem 5): the values of the synopsis predicates intersecting
// Q, the midpoints between consecutive such values, and points just
// outside the extremes. For each candidate consistent with the synopsis,
// fold it in and test whether any element becomes uniquely determined —
// for a max-only history over disjoint predicate sets this is exactly
// "some equality predicate shrank to one element". Deny if any
// consistent candidate compromises.
package maxfull

import (
	"fmt"
	"math"
	"sort"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
	"queryaudit/internal/synopsis"
)

// Auditor is the simulatable max auditor.
type Auditor struct {
	n   int
	syn *synopsis.Max
}

// New returns a max auditor over n records. The dataset must be
// duplicate-free (the engine enforces this at construction).
func New(n int) *Auditor {
	return &Auditor{n: n, syn: synopsis.NewMax(n)}
}

// Name implements audit.Auditor.
func (a *Auditor) Name() string { return "max-full-disclosure" }

// N returns the number of records.
func (a *Auditor) N() int { return a.n }

// Synopsis exposes a copy of the current audit trail (diagnostics).
func (a *Auditor) Synopsis() *synopsis.Max { return a.syn.Clone() }

// Candidates returns the finite set of answers that must be examined for
// query set q (Theorem 5): predicate values touching q plus one
// representative per open interval they delimit. Interval
// representatives avoid every equality value in the synopsis — a
// collision would make the representative spuriously inconsistent and
// leave its interval unexamined (see audit.CandidateAnswers). At least
// one candidate is always returned.
func (a *Auditor) Candidates(q query.Set) []float64 {
	// CandidateAnswers sorts and dedups, so duplicates are fine here —
	// and collecting into a slice (rather than a dedup map iterated in
	// random order) keeps the candidate stream deterministic.
	values := make([]float64, 0, len(q))
	for _, i := range q {
		if p, ok := a.syn.PredOf(i); ok {
			values = append(values, p.Value)
		}
	}
	return audit.CandidateAnswers(values, a.syn.EqValues())
}

// Decide implements audit.Auditor. It uses a closed-form evaluation of
// each candidate (O(preds touching Q) per candidate) when no weak
// post-update predicates exist; DecideReference is the direct
// clone-and-fold evaluation the fast path is property-tested against.
func (a *Auditor) Decide(q query.Query) (audit.Decision, error) {
	if q.Kind != query.Max {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("maxfull: empty query set")
	}
	return a.decideFast(q.Set), nil
}

// DecideReference is the direct implementation of Algorithm 3: fold each
// candidate into a cloned synopsis and inspect it.
func (a *Auditor) DecideReference(q query.Query) (audit.Decision, error) {
	if q.Kind != query.Max {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("maxfull: empty query set")
	}
	anyConsistent := false
	for _, cand := range a.Candidates(q.Set) {
		trial := a.syn.Clone()
		if err := trial.Add(q.Set, cand); err != nil {
			continue // inconsistent answers cannot occur
		}
		anyConsistent = true
		if trial.SingletonEqCount() > 0 {
			return audit.Deny, nil
		}
	}
	if !anyConsistent {
		// Defensive: the true answer is always consistent, so this means
		// the candidate set missed it — deny rather than risk leakage.
		return audit.Deny, nil
	}
	return audit.Answer, nil
}

// decideFast evaluates every candidate answer against aggregate counts of
// the predicates touching Q, avoiding synopsis clones. For each
// candidate a the relevant facts are:
//
//	consistency — some element of Q can attain a; no equality predicate
//	  with value > a lies wholly inside Q; if some equality predicate
//	  already owns a it must intersect Q;
//	compromise — (merge) the a-owning predicate intersects Q in exactly
//	  one element; (witness) exactly one element of Q can attain a; or
//	  (shrink) an equality predicate with value > a keeps exactly one
//	  element after its Q-members move below a.
type touching struct {
	pred synopsis.Pred
	cnt  int
}

func (a *Auditor) decideFast(q query.Set) audit.Decision {
	byPred := make(map[int]*touching)
	free := 0
	for _, i := range q {
		p, ok := a.syn.PredOf(i)
		if !ok {
			free++
			continue
		}
		t := byPred[p.ID]
		if t == nil {
			t = &touching{pred: p}
			byPred[p.ID] = t
		}
		t.cnt++
	}
	touches := make([]*touching, 0, len(byPred))
	//auditlint:allow detrand sorted by predicate ID below
	for _, t := range byPred {
		touches = append(touches, t)
	}
	sort.Slice(touches, func(i, j int) bool { return touches[i].pred.ID < touches[j].pred.ID })
	anyConsistent := false
	for _, cand := range a.Candidates(q) {
		consistent, compromised := evalCandidate(a.syn, cand, touches, free)
		if !consistent {
			continue
		}
		anyConsistent = true
		if compromised {
			return audit.Deny
		}
	}
	if !anyConsistent {
		return audit.Deny
	}
	return audit.Answer
}

func evalCandidate(syn *synopsis.Max, a float64, touches []*touching, free int) (consistent, compromised bool) {
	// A foreign equality predicate owning a makes the answer impossible;
	// an intersecting one switches to the merge analysis.
	var merge *touching
	if gp, ok := syn.EqPredWithValue(a); ok {
		found := false
		for _, t := range touches {
			if t.pred.ID == gp.ID {
				merge = t
				found = true
				break
			}
		}
		if !found {
			return false, false
		}
	}
	witnesses := free
	shrinkSingleton := false
	for _, t := range touches {
		p := t.pred
		switch p.Op {
		case synopsis.OpEq:
			switch {
			case p.Value > a:
				if t.cnt == len(p.Set) {
					return false, false // forces max(Q) > a
				}
				witnesses += t.cnt
				if len(p.Set)-t.cnt == 1 {
					shrinkSingleton = true
				}
			//auditlint:allow floateq candidates are copied predicate values; equality selects the owning predicate exactly
			case p.Value == a:
				// merge handled below; members count as witnesses
			}
		case synopsis.OpLe:
			if p.Value >= a {
				witnesses += t.cnt
			}
		case synopsis.OpLt:
			if p.Value > a {
				witnesses += t.cnt
			}
		}
	}
	if merge != nil {
		// Witness is pinned inside merge.pred.Set ∩ Q.
		return true, merge.cnt == 1 || shrinkSingleton
	}
	if witnesses == 0 {
		return false, false
	}
	return true, witnesses == 1 || shrinkSingleton
}

// Record implements audit.Auditor.
func (a *Auditor) Record(q query.Query, answer float64) {
	if err := a.syn.Add(q.Set, answer); err != nil {
		panic(fmt.Sprintf("maxfull: recording true answer failed: %v", err))
	}
}

// NoteUpdate implements audit.UpdateObserver: record idx's sensitive
// value changed, so its derived bounds are retired and any equality
// predicate that might have had it as witness is demoted to a
// witness-free bound.
func (a *Auditor) NoteUpdate(idx int) {
	if idx < 0 || idx >= a.n {
		return
	}
	a.syn.Update(idx)
}

// Compromised reports whether the current trail already pins a value
// (never after a run of correct decisions; used by tests and demos).
func (a *Auditor) Compromised() bool { return a.syn.SingletonEqCount() > 0 }

// Snapshot captures the auditor's audit trail for persistence.
func (a *Auditor) Snapshot() synopsis.Snapshot { return a.syn.Snapshot() }

// Restore rebuilds an auditor from a snapshot, re-validating it.
func Restore(s synopsis.Snapshot) (*Auditor, error) {
	syn, err := synopsis.RestoreMax(s)
	if err != nil {
		return nil, err
	}
	return &Auditor{n: syn.N(), syn: syn}, nil
}

// Knowledge implements audit.KnowledgeReporter: upper bounds derived
// from the synopsis (max queries give no lower bounds).
func (a *Auditor) Knowledge() []audit.ElementKnowledge {
	out := make([]audit.ElementKnowledge, a.n)
	for i := 0; i < a.n; i++ {
		k := audit.ElementKnowledge{Index: i, Lower: math.Inf(-1), Upper: math.Inf(1)}
		if v, strict, ok := a.syn.UpperBound(i); ok {
			k.Upper, k.UpperStrict = v, strict
		}
		if p, ok := a.syn.PredOf(i); ok && p.Eq() && len(p.Set) == 1 {
			k.Pinned = true
			k.Lower, k.LowerStrict = p.Value, false
			k.Upper, k.UpperStrict = p.Value, false
		}
		out[i] = k
	}
	return out
}
