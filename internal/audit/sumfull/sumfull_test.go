package sumfull

import (
	"math/rand"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/field"
	"queryaudit/internal/query"
)

// fastAuditor is the concrete type New returns.
type fastAuditor = Auditor[field.Elem61, field.GF61]

func ask(t *testing.T, a *fastAuditor, q query.Query, xs []float64) (float64, bool) {
	t.Helper()
	d, err := a.Decide(q)
	if err != nil {
		t.Fatalf("Decide(%v): %v", q, err)
	}
	if d == audit.Deny {
		return 0, true
	}
	ans := q.Eval(xs)
	a.Record(q, ans)
	return ans, false
}

// TestClassicCompromisePattern: {0,1}, {1,2} answered; {0,2} must be
// denied because x0, x1, x2 would all become solvable.
func TestClassicCompromisePattern(t *testing.T) {
	xs := []float64{1, 2, 4}
	a := New(3)
	if _, denied := ask(t, a, query.New(query.Sum, 0, 1), xs); denied {
		t.Fatal("sum{0,1} should be answered")
	}
	if _, denied := ask(t, a, query.New(query.Sum, 1, 2), xs); denied {
		t.Fatal("sum{1,2} should be answered")
	}
	d, err := a.Decide(query.New(query.Sum, 0, 2))
	if err != nil || d != audit.Deny {
		t.Fatalf("sum{0,2} decision = %v,%v; want deny", d, err)
	}
	if a.Compromised() {
		t.Fatal("auditor state must remain uncompromised")
	}
}

// TestSingletonDenied: a single-element sum is immediate compromise.
func TestSingletonDenied(t *testing.T) {
	a := New(3)
	d, err := a.Decide(query.New(query.Sum, 1))
	if err != nil || d != audit.Deny {
		t.Fatalf("singleton decision = %v,%v; want deny", d, err)
	}
}

// TestRepeatAnswered: an exact repeat adds nothing and stays answerable.
func TestRepeatAnswered(t *testing.T) {
	xs := []float64{1, 2, 4}
	a := New(3)
	ask(t, a, query.New(query.Sum, 0, 1, 2), xs)
	d, err := a.Decide(query.New(query.Sum, 0, 1, 2))
	if err != nil || d != audit.Answer {
		t.Fatalf("repeat decision = %v,%v; want answer", d, err)
	}
}

// TestComplementDenied: sum{0..n} then sum{1..n} reveals x0.
func TestComplementDenied(t *testing.T) {
	xs := []float64{1, 2, 4, 8}
	a := New(4)
	ask(t, a, query.New(query.Sum, 0, 1, 2, 3), xs)
	d, _ := a.Decide(query.New(query.Sum, 1, 2, 3))
	if d != audit.Deny {
		t.Fatal("complement query must be denied")
	}
}

// TestUpdateRestoresUtility reproduces the paper's update example: after
// sum{a,b,c} is answered and x_a is modified, sum{a,b} can be answered
// (without the update it reveals x_c).
func TestUpdateRestoresUtility(t *testing.T) {
	xs := []float64{1, 2, 4}
	a := New(3)
	ask(t, a, query.New(query.Sum, 0, 1, 2), xs)
	// Without update, sum{0,1} would reveal x2: denied.
	if d, _ := a.Decide(query.New(query.Sum, 0, 1)); d != audit.Deny {
		t.Fatal("sum{0,1} must be denied before the update")
	}
	a.NoteUpdate(0)
	if d, _ := a.Decide(query.New(query.Sum, 0, 1)); d != audit.Answer {
		t.Fatal("sum{0,1} must be answerable after x0 is modified")
	}
}

// TestUpdateStillProtectsOldValues: the new query plus old equations must
// not solve for any past version either.
func TestUpdateStillProtectsOldValues(t *testing.T) {
	a := New(2)
	// sum{0,1} answered; update x0; now sum{0,1} uses the new column.
	d, _ := a.Decide(query.New(query.Sum, 0, 1))
	if d != audit.Answer {
		t.Fatal("first query should pass")
	}
	a.Record(query.New(query.Sum, 0, 1), 3)
	a.NoteUpdate(0)
	// sum{0', 1}: answering both would give x0+x1 and x0'+x1 — no single
	// value solvable. Allowed.
	if d, _ := a.Decide(query.New(query.Sum, 0, 1)); d != audit.Answer {
		t.Fatal("post-update repeat should be answerable")
	}
	a.Record(query.New(query.Sum, 0, 1), 5)
	// sum{1} alone obviously denied; and sum{0} denied: x0' determinable.
	if d, _ := a.Decide(query.New(query.Sum, 1)); d != audit.Deny {
		t.Fatal("singleton must be denied")
	}
	// sum{0,1} again: already in span, answerable, no info.
	if d, _ := a.Decide(query.New(query.Sum, 0, 1)); d != audit.Answer {
		t.Fatal("dependent repeat should be answerable")
	}
}

// TestNoCompromiseEverInvariant drives random query streams and verifies
// the audited row space never contains an elementary vector, and that
// denials are exactly the queries whose addition would create one.
func TestNoCompromiseEverInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(6)
		a := New(n)
		for step := 0; step < 4*n; step++ {
			var support []int
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					support = append(support, i)
				}
			}
			if len(support) == 0 {
				continue
			}
			q := query.New(query.Sum, support...)
			d, err := a.Decide(q)
			if err != nil {
				t.Fatal(err)
			}
			if d == audit.Answer {
				a.Record(q, 0)
			}
			if a.Compromised() {
				t.Fatalf("trial %d: compromise after %v", trial, q)
			}
			// Occasionally update a random record.
			if rng.Intn(10) == 0 {
				a.NoteUpdate(rng.Intn(n))
			}
		}
	}
}

// TestWrongKindRejected: non-sum queries are errors, not denials.
func TestWrongKindRejected(t *testing.T) {
	a := New(3)
	_, err := a.Decide(query.New(query.Max, 0, 1))
	if err == nil {
		t.Fatal("expected ErrUnsupportedKind")
	}
}

// TestExactFieldAgrees cross-checks GF61 and exact-rational decisions on
// random streams.
func TestExactFieldAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(4)
		fast := New(n)
		exact := NewExact(n)
		for step := 0; step < 3*n; step++ {
			var support []int
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					support = append(support, i)
				}
			}
			if len(support) == 0 {
				continue
			}
			q := query.New(query.Sum, support...)
			d1, _ := fast.Decide(q)
			d2, _ := exact.Decide(q)
			if d1 != d2 {
				t.Fatalf("trial %d step %d: GF61=%v exact=%v for %v", trial, step, d1, d2, q)
			}
			if d1 == audit.Answer {
				fast.Record(q, 0)
				exact.Record(q, 0)
			}
		}
	}
}

