// Package sumfull implements the classical (full-disclosure) simulatable
// sum auditor of [Chin–Ozsoyoglu '81; Kenthapadi–Mishra–Nissim '05] whose
// utility Sections 5 and 6 of the paper analyze.
//
// Each answered sum query contributes its 0/1 query vector to a row space
// maintained in reduced row-echelon form. Some x_i is uniquely
// determined iff an elementary vector lies in that row space, which in
// RREF manifests as a singleton basis row. The auditor is simulatable
// because the decision depends only on the query vectors, never on any
// answer: it denies exactly when answering would put an elementary
// vector into the span.
//
// Updates (Sections 5–6): modifying record i retires its column and opens
// a fresh one for the new version. Old equations keep constraining the
// old version; a query is denied if answering it would uniquely determine
// any past or present value, i.e. any elementary vector over any version
// column.
package sumfull

import (
	"fmt"

	"queryaudit/internal/audit"
	"queryaudit/internal/field"
	"queryaudit/internal/linalg"
	"queryaudit/internal/query"
)

// Auditor is the simulatable sum auditor, generic over the scalar field
// used for the exact linear algebra.
type Auditor[E any, F field.Field[E]] struct {
	f   F
	n   int
	ech *linalg.Echelon[E, F]
	// col[i] is the live column of record i (its current version).
	col []int
	// answered counts committed answers (diagnostics only).
	answered int
}

// New returns a sum auditor over n records using the fast GF(2^61−1)
// field. This is the variant the experiments use.
func New(n int) *Auditor[field.Elem61, field.GF61] {
	return NewWithField[field.Elem61](field.GF61{}, n)
}

// NewExact returns a sum auditor computing over exact rationals. It is
// slower and used for cross-checking.
func NewExact(n int) *Auditor[field.RatElem, field.Rat] {
	return NewWithField[field.RatElem](field.Rat{}, n)
}

// NewWithField returns a sum auditor over an arbitrary field.
func NewWithField[E any, F field.Field[E]](f F, n int) *Auditor[E, F] {
	a := &Auditor[E, F]{f: f, n: n, ech: linalg.NewEchelon[E](f, n), col: make([]int, n)}
	for i := range a.col {
		a.col[i] = i
	}
	return a
}

// Name implements audit.Auditor.
func (a *Auditor[E, F]) Name() string { return "sum-full-disclosure" }

// N returns the number of records.
func (a *Auditor[E, F]) N() int { return a.n }

// Rank returns the dimension of the answered query span (diagnostics).
func (a *Auditor[E, F]) Rank() int { return a.ech.Rank() }

// vector maps a query set onto the live version columns.
func (a *Auditor[E, F]) vector(s query.Set) ([]E, error) {
	support := make([]int, len(s))
	for k, i := range s {
		if i < 0 || i >= a.n {
			return nil, fmt.Errorf("sumfull: index %d out of range 0..%d", i, a.n-1)
		}
		support[k] = a.col[i]
	}
	return linalg.VectorFromSupport[E](a.f, a.ech.NumCols(), support), nil
}

// Decide implements audit.Auditor: deny iff answering would reveal some
// past or present value. The answer itself is never consulted.
func (a *Auditor[E, F]) Decide(q query.Query) (audit.Decision, error) {
	if q.Kind != query.Sum {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("sumfull: empty query set")
	}
	v, err := a.vector(q.Set)
	if err != nil {
		return audit.Deny, err
	}
	if a.ech.WouldCreateElementary(v) {
		return audit.Deny, nil
	}
	return audit.Answer, nil
}

// Record implements audit.Auditor. The answer value is ignored: under
// classical compromise only the query vectors matter.
func (a *Auditor[E, F]) Record(q query.Query, _ float64) {
	v, err := a.vector(q.Set)
	if err != nil {
		panic(fmt.Sprintf("sumfull: Record after successful Decide failed: %v", err))
	}
	a.ech.Add(v)
	a.answered++
}

// NoteUpdate implements audit.UpdateObserver: record idx was modified,
// so its future queries reference a fresh column while old equations keep
// constraining the retired version.
func (a *Auditor[E, F]) NoteUpdate(idx int) {
	if idx < 0 || idx >= a.n {
		return
	}
	a.ech.AppendColumns(1)
	a.col[idx] = a.ech.NumCols() - 1
}

// Compromised reports whether some version of some record is already
// uniquely determined (it never is after a run of correct decisions;
// exposed for tests and attack demos).
func (a *Auditor[E, F]) Compromised() bool {
	_, ok := a.ech.ElementaryInSpan()
	return ok
}

// Snapshot is a serializable image of the auditor's state. Basis rows
// are stored as field elements; restoring re-adds them, which re-derives
// all RREF bookkeeping and re-validates invariants.
type Snapshot struct {
	N    int        `json:"n"`
	Cols []int      `json:"cols"`
	Rows [][]uint64 `json:"rows"`
}

// Snapshot captures the current state (GF(2^61−1) auditors only).
func (a *Auditor[E, F]) Snapshot() (Snapshot, error) {
	s := Snapshot{N: a.n, Cols: append([]int(nil), a.col...)}
	for _, row := range a.ech.Rows() {
		out := make([]uint64, len(row))
		for j, v := range row {
			e, ok := any(v).(field.Elem61)
			if !ok {
				return Snapshot{}, fmt.Errorf("sumfull: snapshots support the GF(2^61-1) auditor only")
			}
			out[j] = uint64(e)
		}
		s.Rows = append(s.Rows, out)
	}
	return s, nil
}

// Restore rebuilds a GF(2^61−1) auditor from a snapshot.
func Restore(s Snapshot) (*Auditor[field.Elem61, field.GF61], error) {
	if s.N < 0 || len(s.Cols) != s.N {
		return nil, fmt.Errorf("sumfull: snapshot has %d cols for n=%d", len(s.Cols), s.N)
	}
	a := New(s.N)
	ncols := s.N
	for _, c := range s.Cols {
		if c < 0 {
			return nil, fmt.Errorf("sumfull: negative column in snapshot")
		}
		if c+1 > ncols {
			ncols = c + 1
		}
	}
	for _, row := range s.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	if ncols > s.N {
		a.ech.AppendColumns(ncols - s.N)
	}
	copy(a.col, s.Cols)
	for _, row := range s.Rows {
		v := make([]field.Elem61, ncols)
		for j, x := range row {
			if x >= field.Mersenne61 {
				return nil, fmt.Errorf("sumfull: element %d out of field range", x)
			}
			v[j] = field.Elem61(x)
		}
		a.ech.Add(v)
	}
	if err := a.ech.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("sumfull: snapshot invalid: %w", err)
	}
	return a, nil
}
