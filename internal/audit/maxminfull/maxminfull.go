// Package maxminfull implements the paper's Section 4 contribution: the
// first online simulatable auditor for *bags* of max and min queries
// under full disclosure, assuming a duplicate-free dataset.
//
// The decision procedure is Algorithm 3: for a new query (max or min)
// over set Q, only 2l+1 candidate answers need checking (Theorem 5) —
// the l answers of history predicates intersecting Q plus one
// representative per open interval they delimit (representatives chosen
// to dodge every equality value in the synopsis; see
// audit.CandidateAnswers for why a collision would be a privacy hole). A
// candidate is folded into a clone of the combined synopsis
// B = (B_max, B_min); inconsistent candidates are skipped (they cannot be
// the true answer), and if any consistent candidate would uniquely
// determine some element — per the Theorem 3 characterization — the
// query is denied. The synopsis keeps the audit trail at O(n) in place
// of the raw query log (Section 4, "no duplicates" discussion).
package maxminfull

import (
	"fmt"

	"queryaudit/internal/audit"
	"queryaudit/internal/extreme"
	"queryaudit/internal/query"
	"queryaudit/internal/synopsis"
)

// Auditor is the simulatable max-and-min auditor.
type Auditor struct {
	n   int
	syn *synopsis.MaxMin
}

// New returns an auditor over n records with unbounded data range. The
// dataset must be duplicate-free.
func New(n int) *Auditor {
	alpha, beta := synopsis.Unbounded()
	return &Auditor{n: n, syn: synopsis.NewMaxMin(n, alpha, beta)}
}

// Name implements audit.Auditor.
func (a *Auditor) Name() string { return "maxmin-full-disclosure" }

// N returns the number of records.
func (a *Auditor) N() int { return a.n }

// Synopsis exposes a copy of the current audit trail (diagnostics).
func (a *Auditor) Synopsis() *synopsis.MaxMin { return a.syn.Clone() }

// Candidates returns the finite answer set of Algorithm 3 for query set
// q: values of predicates (either side) intersecting q plus one
// representative per open interval they delimit, with representatives
// avoiding every equality value in the synopsis (audit.CandidateAnswers
// explains why a collision would be a privacy hole).
func (a *Auditor) Candidates(q query.Set) []float64 {
	// CandidateAnswers sorts and dedups, so duplicates are fine here —
	// and collecting into a slice (rather than a dedup map iterated in
	// random order) keeps the candidate stream deterministic.
	values := make([]float64, 0, 2*len(q))
	for _, i := range q {
		if p, ok := a.syn.MaxPredOf(i); ok {
			values = append(values, p.Value)
		}
		if p, ok := a.syn.MinPredOf(i); ok {
			values = append(values, p.Value)
		}
	}
	return audit.CandidateAnswers(values, a.syn.EqValues())
}

// compromised reports whether the trial synopsis uniquely determines any
// element. Without weak (post-update) predicates a pinned element always
// surfaces as a singleton equality predicate after normalization; with
// them, a weak lower bound meeting an upper bound can pin silently, so
// the full extreme-element analysis takes over.
func compromised(b *synopsis.MaxMin) bool {
	if b.SingletonEqCount() > 0 {
		return true
	}
	if b.WeakPredCount() == 0 {
		return false
	}
	res := extreme.Analyze(b.N(), extreme.FromSynopsis(b))
	return res.Consistent && res.Compromised
}

// Decide implements audit.Auditor for Max and Min queries.
func (a *Auditor) Decide(q query.Query) (audit.Decision, error) {
	if q.Kind != query.Max && q.Kind != query.Min {
		return audit.Deny, fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if len(q.Set) == 0 {
		return audit.Deny, fmt.Errorf("maxminfull: empty query set")
	}
	anyConsistent := false
	for _, cand := range a.Candidates(q.Set) {
		trial := a.syn.Clone()
		var err error
		if q.Kind == query.Max {
			err = trial.AddMax(q.Set, cand)
		} else {
			err = trial.AddMin(q.Set, cand)
		}
		if err != nil {
			continue
		}
		anyConsistent = true
		if compromised(trial) {
			return audit.Deny, nil
		}
	}
	if !anyConsistent {
		return audit.Deny, nil // defensive; the true answer is consistent
	}
	return audit.Answer, nil
}

// Record implements audit.Auditor.
func (a *Auditor) Record(q query.Query, answer float64) {
	var err error
	switch q.Kind {
	case query.Max:
		err = a.syn.AddMax(q.Set, answer)
	case query.Min:
		err = a.syn.AddMin(q.Set, answer)
	default:
		err = fmt.Errorf("%w: %v", audit.ErrUnsupportedKind, q.Kind)
	}
	if err != nil {
		panic(fmt.Sprintf("maxminfull: recording true answer failed: %v", err))
	}
}

// NoteUpdate implements audit.UpdateObserver.
func (a *Auditor) NoteUpdate(idx int) {
	if idx < 0 || idx >= a.n {
		return
	}
	a.syn.Update(idx)
}

// Compromised reports whether the committed trail already pins a value.
func (a *Auditor) Compromised() bool { return compromised(a.syn) }

// Snapshot captures the auditor's combined audit trail for persistence.
func (a *Auditor) Snapshot() synopsis.MaxMinSnapshot { return a.syn.Snapshot() }

// Restore rebuilds an auditor from a snapshot, re-validating it.
func Restore(s synopsis.MaxMinSnapshot) (*Auditor, error) {
	syn, err := synopsis.RestoreMaxMin(s)
	if err != nil {
		return nil, err
	}
	return &Auditor{n: syn.N(), syn: syn}, nil
}

// Knowledge implements audit.KnowledgeReporter using the combined
// synopsis ranges.
func (a *Auditor) Knowledge() []audit.ElementKnowledge {
	out := make([]audit.ElementKnowledge, a.n)
	for i := 0; i < a.n; i++ {
		r := a.syn.RangeOf(i)
		out[i] = audit.ElementKnowledge{
			Index:       i,
			Lower:       r.Lo,
			Upper:       r.Hi,
			LowerStrict: r.LoStrict,
			UpperStrict: r.HiStrict,
			Pinned:      r.Pinned(),
		}
	}
	return out
}
