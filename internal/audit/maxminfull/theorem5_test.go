package maxminfull

import (
	"math/rand"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/query"
)

// denseDecide re-derives the decision by sweeping a fine grid of
// hypothetical answers instead of the 2l+1 candidates of Theorem 5:
// every value in a dense net over the relevant range (plus every exact
// predicate value). If Theorem 5 is right — within each open interval
// between relevant values all answers behave identically — this always
// agrees with Decide.
func denseDecide(a *Auditor, q query.Query) audit.Decision {
	lo, hi := -2.0, 60.0 // generously brackets the test values
	var cands []float64
	const gridSteps = 240
	for k := 0; k <= gridSteps; k++ {
		cands = append(cands, lo+(hi-lo)*float64(k)/gridSteps)
	}
	// Exact predicate values matter too (the grid may miss them).
	for _, p := range a.syn.MaxPreds() {
		cands = append(cands, p.Value)
	}
	for _, p := range a.syn.MinPreds() {
		cands = append(cands, p.Value)
	}
	anyConsistent := false
	for _, cand := range cands {
		trial := a.syn.Clone()
		var err error
		if q.Kind == query.Max {
			err = trial.AddMax(q.Set, cand)
		} else {
			err = trial.AddMin(q.Set, cand)
		}
		if err != nil {
			continue
		}
		anyConsistent = true
		if compromised(trial) {
			return audit.Deny
		}
	}
	if !anyConsistent {
		return audit.Deny
	}
	return audit.Answer
}

// TestTheorem5CandidateSufficiency: across random histories, the finite
// candidate set's decision equals the dense sweep's.
func TestTheorem5CandidateSufficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(5)
		xs := distinct(rng, n)
		a := New(n)
		for step := 0; step < 10; step++ {
			set := randSet(rng, n)
			kind := query.Max
			if rng.Intn(2) == 0 {
				kind = query.Min
			}
			q := query.Query{Set: set, Kind: kind}
			std, err := a.Decide(q)
			if err != nil {
				t.Fatal(err)
			}
			dense := denseDecide(a, q)
			if std != dense {
				t.Fatalf("trial %d step %d: candidates=%v dense=%v\nmax=%v\nmin=%v\nq=%v",
					trial, step, std, dense, a.syn.MaxPreds(), a.syn.MinPreds(), q)
			}
			if std == audit.Answer {
				a.Record(q, q.Eval(xs))
			}
		}
	}
}

// TestTheorem5Intervals: inside one open interval between consecutive
// relevant values, all answers are equi-consistent and equi-compromising
// (the statement of Theorem 5 itself).
func TestTheorem5Intervals(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(4)
		xs := distinct(rng, n)
		a := New(n)
		for step := 0; step < 6; step++ {
			set := randSet(rng, n)
			kind := query.Max
			if rng.Intn(2) == 0 {
				kind = query.Min
			}
			q := query.Query{Set: set, Kind: kind}
			if d, _ := a.Decide(q); d == audit.Answer {
				a.Record(q, q.Eval(xs))
			}
		}
		// Probe one query's candidate intervals with three points each.
		set := randSet(rng, n)
		cands := a.Candidates(set)
		kind := query.Max
		apply := func(v float64) (bool, bool) {
			trial := a.syn.Clone()
			var err error
			if kind == query.Max {
				err = trial.AddMax(set, v)
			} else {
				err = trial.AddMin(set, v)
			}
			if err != nil {
				return false, false
			}
			return true, compromised(trial)
		}
		for k := 0; k+1 < len(cands); k++ {
			loV, hiV := cands[k], cands[k+1]
			if hiV <= loV {
				continue
			}
			a1, c1 := apply(loV + (hiV-loV)*0.25)
			a2, c2 := apply(loV + (hiV-loV)*0.5)
			a3, c3 := apply(loV + (hiV-loV)*0.75)
			if a1 != a2 || a2 != a3 || (a1 && (c1 != c2 || c2 != c3)) {
				t.Fatalf("trial %d: interval (%g,%g) not homogeneous: (%v,%v) (%v,%v) (%v,%v)",
					trial, loV, hiV, a1, c1, a2, c2, a3, c3)
			}
		}
	}
}
