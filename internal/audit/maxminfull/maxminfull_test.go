package maxminfull

import (
	"math/rand"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/extreme"
	"queryaudit/internal/query"
)

func drive(t *testing.T, a *Auditor, kind query.Kind, set query.Set, xs []float64) bool {
	t.Helper()
	q := query.Query{Set: set, Kind: kind}
	d, err := a.Decide(q)
	if err != nil {
		t.Fatalf("Decide(%v): %v", q, err)
	}
	if d == audit.Deny {
		return false
	}
	a.Record(q, q.Eval(xs))
	return true
}

// TestSingletonDenied for both kinds.
func TestSingletonDenied(t *testing.T) {
	a := New(3)
	if d, _ := a.Decide(query.New(query.Max, 1)); d != audit.Deny {
		t.Fatal("singleton max must be denied")
	}
	if d, _ := a.Decide(query.New(query.Min, 1)); d != audit.Deny {
		t.Fatal("singleton min must be denied")
	}
}

// TestMaxThenMinSameSetDenied: answering min(S) after max(S) on a
// 2-element set pins both elements up to the unknown permutation — but a
// shared witness candidate answer (min == max answer is inconsistent for
// |S|≥2; the dangerous case is min answer arbitrarily close) ... the
// auditor must deny when some consistent answer would pin an element.
// For S = {a,b}: after max{a,b}=M, the probe min{a,b} has a consistent
// answer equal to M? No (duplicates). Any answer m<M keeps both
// orderings open, so min{a,b} is actually safe. Verify it is answered.
func TestMaxThenMinPairAnswered(t *testing.T) {
	xs := []float64{3, 7}
	a := New(2)
	if !drive(t, a, query.Max, query.NewSet(0, 1), xs) {
		t.Fatal("max should be answered")
	}
	if !drive(t, a, query.Min, query.NewSet(0, 1), xs) {
		t.Fatal("min over the same pair should be answered")
	}
	if a.Compromised() {
		t.Fatal("pair max+min must not compromise")
	}
}

// TestMinOverlappingMaxDenied: after max{a,b,c}=M, the query min{c,d}
// has a consistent answer equal to M (x_c = M, x_d > M) which would pin
// x_c — deny.
func TestMinOverlappingMaxDenied(t *testing.T) {
	xs := []float64{1, 2, 9, 12}
	a := New(4)
	if !drive(t, a, query.Max, query.NewSet(0, 1, 2), xs) {
		t.Fatal("max should be answered")
	}
	if d, _ := a.Decide(query.New(query.Min, 2, 3)); d != audit.Deny {
		t.Fatal("min{c,d} must be denied: answer M would pin x_c")
	}
}

// TestTruthStreamsNeverCompromise: the auditor must keep the invariant
// that answered histories never uniquely determine an element, verified
// independently through the extreme-element analysis.
func TestTruthStreamsNeverCompromise(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(6)
		xs := distinct(rng, n)
		a := New(n)
		answered := 0
		var cons []extreme.Constraint
		for step := 0; step < 16; step++ {
			set := randSet(rng, n)
			kind := query.Max
			if rng.Intn(2) == 0 {
				kind = query.Min
			}
			q := query.Query{Set: set, Kind: kind}
			d, err := a.Decide(q)
			if err != nil {
				t.Fatal(err)
			}
			if d == audit.Deny {
				continue
			}
			ans := q.Eval(xs)
			a.Record(q, ans)
			answered++
			cons = append(cons, extreme.Constraint{Set: set, Value: ans, IsMax: kind == query.Max, Rel: extreme.RelEq})
			// Independent verification on the raw answered history.
			res := extreme.Analyze(n, cons)
			if !res.Consistent {
				t.Fatalf("trial %d: true history inconsistent?!", trial)
			}
			if res.Compromised {
				t.Fatalf("trial %d step %d: auditor answered a compromising stream\ncons=%v xs=%v",
					trial, step, cons, xs)
			}
			if a.Compromised() {
				t.Fatalf("trial %d: synopsis compromise after answering", trial)
			}
		}
		_ = answered
	}
}

// TestSynopsisMatchesRawHistory: compromise/consistency decisions through
// the O(n) synopsis must match the extreme analysis over the raw query
// log (the compression is information-preserving).
func TestSynopsisMatchesRawHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		xs := distinct(rng, n)
		a := New(n)
		var raw []extreme.Constraint
		for step := 0; step < 12; step++ {
			set := randSet(rng, n)
			kind := query.Max
			if rng.Intn(2) == 0 {
				kind = query.Min
			}
			q := query.Query{Set: set, Kind: kind}
			if d, _ := a.Decide(q); d == audit.Answer {
				ans := q.Eval(xs)
				a.Record(q, ans)
				raw = append(raw, extreme.Constraint{Set: set, Value: ans, IsMax: kind == query.Max, Rel: extreme.RelEq})
			}
			fromSyn := extreme.Analyze(n, extreme.FromSynopsis(a.Synopsis()))
			fromRaw := extreme.Analyze(n, raw)
			if fromSyn.Compromised != fromRaw.Compromised || fromSyn.Consistent != fromRaw.Consistent {
				t.Fatalf("trial %d step %d: synopsis (%v,%v) vs raw (%v,%v)\nsynMax=%v\nraw=%v",
					trial, step, fromSyn.Consistent, fromSyn.Compromised,
					fromRaw.Consistent, fromRaw.Compromised, a.Synopsis().MaxPreds(), raw)
			}
		}
	}
}

func distinct(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	used := map[float64]bool{}
	for i := range xs {
		v := float64(rng.Intn(40))
		for used[v] {
			v = float64(rng.Intn(40))
		}
		used[v] = true
		xs[i] = v
	}
	return xs
}

func randSet(rng *rand.Rand, n int) query.Set {
	for {
		var q []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				q = append(q, i)
			}
		}
		if len(q) > 0 {
			return query.NewSet(q...)
		}
	}
}

// TestKnowledgeReport: ranges reflect answered max/min queries and pins.
func TestKnowledgeReport(t *testing.T) {
	xs := []float64{1, 2, 9, 12}
	a := New(4)
	if !drive(t, a, query.Max, query.NewSet(0, 1, 2), xs) {
		t.Fatal("max denied")
	}
	if !drive(t, a, query.Min, query.NewSet(0, 1), xs) {
		t.Fatal("min denied")
	}
	ks := a.Knowledge()
	if len(ks) != 4 {
		t.Fatalf("%d entries", len(ks))
	}
	// x0, x1 ∈ [1, 9]; x2 ≤ 9; x3 unconstrained.
	if ks[0].Lower != 1 || ks[0].Upper != 9 {
		t.Errorf("x0 knowledge %+v", ks[0])
	}
	if ks[2].Upper != 9 {
		t.Errorf("x2 knowledge %+v", ks[2])
	}
	if ks[3].Upper < 1e308 || ks[3].Lower > -1e308 {
		t.Errorf("x3 should be unconstrained: %+v", ks[3])
	}
	for _, k := range ks {
		if k.Pinned {
			t.Errorf("nothing should be pinned: %+v", k)
		}
	}
}
