package field

import "math/big"

// Rat is the field of exact rationals backed by math/big.Rat. The zero
// value is ready to use. All operations allocate fresh elements; inputs
// are never mutated.
type Rat struct{}

// RatElem is an exact rational field element. A nil pointer is not a
// valid element; use Rat.Zero.
type RatElem = *big.Rat

// Zero returns 0/1.
func (Rat) Zero() RatElem { return new(big.Rat) }

// One returns 1/1.
func (Rat) One() RatElem { return big.NewRat(1, 1) }

// FromInt embeds v as v/1.
func (Rat) FromInt(v int64) RatElem { return big.NewRat(v, 1) }

// Add returns a+b.
func (Rat) Add(a, b RatElem) RatElem { return new(big.Rat).Add(a, b) }

// Sub returns a−b.
func (Rat) Sub(a, b RatElem) RatElem { return new(big.Rat).Sub(a, b) }

// Mul returns a·b.
func (Rat) Mul(a, b RatElem) RatElem { return new(big.Rat).Mul(a, b) }

// Neg returns −a.
func (Rat) Neg(a RatElem) RatElem { return new(big.Rat).Neg(a) }

// Inv returns 1/a, panicking on zero (a caller pivoting bug).
func (Rat) Inv(a RatElem) RatElem {
	if a.Sign() == 0 {
		panic("field: inverse of zero rational")
	}
	return new(big.Rat).Inv(a)
}

// IsZero reports whether a == 0.
func (Rat) IsZero(a RatElem) bool { return a.Sign() == 0 }

// Equal reports whether a == b as rationals.
func (Rat) Equal(a, b RatElem) bool { return a.Cmp(b) == 0 }
