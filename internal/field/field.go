// Package field provides the scalar arithmetic used by the sum auditor's
// exact linear algebra (Section 5 of the paper).
//
// Rank and row-space computations over 0/1 query matrices are statements
// about the rationals. The package offers two interchangeable fields:
//
//   - GF61: the Mersenne prime field GF(2^61−1). The rank of an integer
//     matrix over GF(p) is at most its rank over ℚ, and equals it unless p
//     divides one of the (at most 2^O(n)) nonzero minors — for 0/1
//     matrices of the sizes audited here the failure probability is
//     negligible and the arithmetic is branch-free uint64 work.
//   - Rat: exact arithmetic on math/big rationals, used for cross-checking
//     in tests and available to callers who want unconditional exactness.
//
// Field is a generics-based interface so that internal/linalg can be
// written once and instantiated with either scalar type.
package field

// Field defines the operations linear algebra needs over element type E.
// Implementations must treat elements as immutable values: no operation
// may mutate its arguments.
type Field[E any] interface {
	// Zero and One return the additive and multiplicative identities.
	Zero() E
	One() E
	// FromInt embeds an integer into the field.
	FromInt(v int64) E
	// Add returns a+b, Sub returns a−b, Mul returns a·b.
	Add(a, b E) E
	Sub(a, b E) E
	Mul(a, b E) E
	// Neg returns −a.
	Neg(a E) E
	// Inv returns a⁻¹. It panics when a is zero.
	Inv(a E) E
	// IsZero reports whether a is the additive identity.
	IsZero(a E) bool
	// Equal reports whether a and b are the same field element.
	Equal(a, b E) bool
}
