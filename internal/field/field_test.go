package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGF61Axioms property-checks the field axioms on random elements.
func TestGF61Axioms(t *testing.T) {
	f := GF61{}
	rng := rand.New(rand.NewSource(1))
	elem := func() Elem61 { return Elem61(rng.Uint64() % Mersenne61) }
	for i := 0; i < 2000; i++ {
		a, b, c := elem(), elem(), elem()
		if !f.Equal(f.Add(a, b), f.Add(b, a)) {
			t.Fatalf("add not commutative: %d %d", a, b)
		}
		if !f.Equal(f.Mul(a, b), f.Mul(b, a)) {
			t.Fatalf("mul not commutative: %d %d", a, b)
		}
		if !f.Equal(f.Add(f.Add(a, b), c), f.Add(a, f.Add(b, c))) {
			t.Fatalf("add not associative")
		}
		if !f.Equal(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c))) {
			t.Fatalf("mul not associative: %d %d %d", a, b, c)
		}
		if !f.Equal(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c))) {
			t.Fatalf("not distributive")
		}
		if !f.Equal(f.Add(a, f.Neg(a)), f.Zero()) {
			t.Fatalf("neg broken: %d", a)
		}
		if !f.Equal(f.Sub(a, b), f.Add(a, f.Neg(b))) {
			t.Fatalf("sub != add neg")
		}
		if !f.IsZero(a) {
			if !f.Equal(f.Mul(a, f.Inv(a)), f.One()) {
				t.Fatalf("inv broken: %d", a)
			}
		}
	}
}

// TestGF61MulMatchesBigInt cross-checks multiplication against a widening
// reference implementation.
func TestGF61MulMatchesBigInt(t *testing.T) {
	f := GF61{}
	check := func(a, b uint64) bool {
		x := Elem61(a % Mersenne61)
		y := Elem61(b % Mersenne61)
		got := f.Mul(x, y)
		return uint64(got) == peasantMul(uint64(x), uint64(y))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// peasantMul is an O(61)-step Russian-peasant reference for a·b mod p
// that never overflows uint64.
func peasantMul(a, b uint64) uint64 {
	const p = Mersenne61
	a %= p
	b %= p
	var r uint64
	// Russian-peasant multiplication with doubling mod p: O(61) steps,
	// fine for a test reference.
	for b > 0 {
		if b&1 == 1 {
			r += a
			if r >= p {
				r -= p
			}
		}
		a <<= 1
		if a >= p {
			a -= p
		}
		b >>= 1
	}
	return r
}

// TestRatFieldBasics exercises the exact rational field.
func TestRatFieldBasics(t *testing.T) {
	f := Rat{}
	a := f.FromInt(3)
	b := f.FromInt(-7)
	if got := f.Add(a, b); !f.Equal(got, f.FromInt(-4)) {
		t.Errorf("3 + (-7) = %v", got)
	}
	if got := f.Mul(a, b); !f.Equal(got, f.FromInt(-21)) {
		t.Errorf("3 * (-7) = %v", got)
	}
	inv := f.Inv(a)
	if got := f.Mul(a, inv); !f.Equal(got, f.One()) {
		t.Errorf("3 * 1/3 = %v", got)
	}
	// Operations must not mutate inputs.
	if !f.Equal(a, f.FromInt(3)) {
		t.Error("input mutated by field ops")
	}
	if !f.IsZero(f.Sub(a, a)) {
		t.Error("a - a != 0")
	}
}

// TestFromIntNegatives checks the negative embedding in GF61.
func TestFromIntNegatives(t *testing.T) {
	f := GF61{}
	if got := f.FromInt(-1); !f.Equal(got, f.Neg(f.One())) {
		t.Errorf("FromInt(-1) = %d, want p-1", got)
	}
	if got := f.FromInt(0); !f.IsZero(got) {
		t.Errorf("FromInt(0) = %d", got)
	}
	if got := f.Add(f.FromInt(-5), f.FromInt(5)); !f.IsZero(got) {
		t.Errorf("-5 + 5 = %d", got)
	}
}
