package field

import "math/bits"

// Mersenne61 is the prime modulus 2^61 − 1 of the fast field.
const Mersenne61 uint64 = (1 << 61) - 1

// GF61 is the field GF(2^61−1). The zero value is ready to use.
type GF61 struct{}

// Elem61 is an element of GF(2^61−1), stored canonically in [0, p).
type Elem61 uint64

// Zero returns 0.
func (GF61) Zero() Elem61 { return 0 }

// One returns 1.
func (GF61) One() Elem61 { return 1 }

// FromInt embeds v into the field, reducing mod p and mapping negatives
// to their additive inverses.
func (f GF61) FromInt(v int64) Elem61 {
	if v >= 0 {
		return Elem61(uint64(v) % Mersenne61)
	}
	m := uint64(-v) % Mersenne61
	if m == 0 {
		return 0
	}
	return Elem61(Mersenne61 - m)
}

// Add returns a+b mod p.
func (GF61) Add(a, b Elem61) Elem61 {
	s := uint64(a) + uint64(b)
	if s >= Mersenne61 {
		s -= Mersenne61
	}
	return Elem61(s)
}

// Sub returns a−b mod p.
func (GF61) Sub(a, b Elem61) Elem61 {
	if a >= b {
		return a - b
	}
	return Elem61(uint64(a) + Mersenne61 - uint64(b))
}

// Neg returns −a mod p.
func (GF61) Neg(a Elem61) Elem61 {
	if a == 0 {
		return 0
	}
	return Elem61(Mersenne61 - uint64(a))
}

// Mul returns a·b mod p using the Mersenne reduction: with the 128-bit
// product hi·2^64 + lo, 2^64 ≡ 2^3 (mod 2^61−1), so the product is
// congruent to (lo mod 2^61) + (hi·2^3 + lo>>61).
func (GF61) Mul(a, b Elem61) Elem61 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	r := (lo & Mersenne61) + (hi<<3 | lo>>61)
	r = (r & Mersenne61) + (r >> 61)
	if r >= Mersenne61 {
		r -= Mersenne61
	}
	return Elem61(r)
}

// Inv returns a⁻¹ = a^(p−2) mod p by binary exponentiation. It panics on
// zero input, which indicates a bug in the caller's pivoting logic.
func (f GF61) Inv(a Elem61) Elem61 {
	if a == 0 {
		panic("field: inverse of zero in GF(2^61-1)")
	}
	// p−2 = 2^61 − 3.
	result := f.One()
	base := a
	exp := Mersenne61 - 2
	for exp > 0 {
		if exp&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		exp >>= 1
	}
	return result
}

// IsZero reports whether a == 0.
func (GF61) IsZero(a Elem61) bool { return a == 0 }

// Equal reports whether a == b (elements are canonical).
func (GF61) Equal(a, b Elem61) bool { return a == b }
