package randx

import (
	"math"
	"testing"
)

// TestDeterminism: identical seeds give identical streams.
func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("seeded streams diverged")
		}
	}
}

// TestDuplicateFreeDataset: distinct, in range.
func TestDuplicateFreeDataset(t *testing.T) {
	rng := New(1)
	xs := DuplicateFreeDataset(rng, 500, 0, 1)
	seen := map[float64]bool{}
	for _, x := range xs {
		if x < 0 || x >= 1 {
			t.Fatalf("value %g out of [0,1)", x)
		}
		if seen[x] {
			t.Fatalf("duplicate %g", x)
		}
		seen[x] = true
	}
}

// TestSubsetNonEmptyAndMarginals: every element appears with frequency
// ≈ 1/2 and no empty subsets are produced.
func TestSubsetNonEmptyAndMarginals(t *testing.T) {
	rng := New(2)
	const n, trials = 10, 4000
	counts := make([]int, n)
	for tr := 0; tr < trials; tr++ {
		s := Subset(rng, n)
		if len(s) == 0 {
			t.Fatal("empty subset")
		}
		for _, i := range s {
			counts[i]++
		}
	}
	for i, c := range counts {
		f := float64(c) / trials
		if math.Abs(f-0.5) > 0.05 {
			t.Errorf("element %d frequency %g, want ≈ 0.5", i, f)
		}
	}
}

// TestSubsetOfSize: exact size, sorted, distinct, uniform-ish.
func TestSubsetOfSize(t *testing.T) {
	rng := New(3)
	for trial := 0; trial < 200; trial++ {
		s := SubsetOfSize(rng, 20, 7)
		if len(s) != 7 {
			t.Fatalf("size %d", len(s))
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatalf("not sorted-distinct: %v", s)
			}
		}
	}
	if got := SubsetOfSize(rng, 5, 9); len(got) != 5 {
		t.Errorf("k > n must clamp, got %v", got)
	}
}

// TestRangeContiguous: contiguous, right width, within bounds.
func TestRangeContiguous(t *testing.T) {
	rng := New(4)
	for trial := 0; trial < 300; trial++ {
		r := Range(rng, 50, 10)
		if len(r) != 10 {
			t.Fatalf("width %d", len(r))
		}
		for i := 1; i < len(r); i++ {
			if r[i] != r[i-1]+1 {
				t.Fatalf("not contiguous: %v", r)
			}
		}
		if r[0] < 0 || r[len(r)-1] >= 50 {
			t.Fatalf("out of bounds: %v", r)
		}
	}
}

// TestWeightedIndexDistribution matches requested weights.
func TestWeightedIndexDistribution(t *testing.T) {
	rng := New(5)
	weights := []float64{1, 3, 6}
	counts := make([]float64, 3)
	const trials = 30000
	for i := 0; i < trials; i++ {
		idx := WeightedIndex(rng, weights)
		if idx < 0 || idx > 2 {
			t.Fatalf("index %d", idx)
		}
		counts[idx]++
	}
	for i, w := range weights {
		want := w / 10
		got := counts[i] / trials
		if math.Abs(got-want) > 0.02 {
			t.Errorf("index %d frequency %g, want %g", i, got, want)
		}
	}
}

// TestWeightedIndexDegenerate: invalid weights give -1.
func TestWeightedIndexDegenerate(t *testing.T) {
	rng := New(6)
	if WeightedIndex(rng, nil) != -1 {
		t.Error("nil weights")
	}
	if WeightedIndex(rng, []float64{0, 0}) != -1 {
		t.Error("zero weights")
	}
	if WeightedIndex(rng, []float64{1, -1}) != -1 {
		t.Error("negative weights")
	}
}

// TestSubsetSizeBetweenClamping.
func TestSubsetSizeBetweenClamping(t *testing.T) {
	rng := New(7)
	for i := 0; i < 100; i++ {
		s := SubsetSizeBetween(rng, 10, 0, 99)
		if len(s) < 1 || len(s) > 10 {
			t.Fatalf("size %d outside clamped range", len(s))
		}
	}
}

// TestSplitIndependence: child generators derived by Split do not
// perturb the parent's subsequent stream relative to a fresh clone, and
// distinct children differ.
func TestSplitIndependence(t *testing.T) {
	a := New(42)
	b := New(42)
	ca := Split(a)
	cb := Split(b)
	for i := 0; i < 50; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatal("identically derived children diverged")
		}
	}
	// Parents stay in lockstep after the split.
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("parents diverged after Split")
		}
	}
	// A second child differs from the first.
	ca2 := Split(a)
	same := true
	for i := 0; i < 10; i++ {
		if ca2.Float64() != ca.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("sibling children produced identical streams")
	}
}
