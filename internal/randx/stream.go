package randx

import "math/rand"

// Counter-based random streams for parallel Monte Carlo.
//
// The simulatable auditors fan a decision's sample budget across a worker
// pool (internal/mcpar). Determinism at any worker count requires that
// sample i consume randomness from a stream that depends only on (seed, i)
// — never on which worker ran it or on what other samples consumed. The
// construction is splitmix64: a Weyl-sequence state advanced by the golden
// gamma and scrambled by a two-round avalanche finalizer. Distinct stream
// indices land the state in far-apart positions of the Weyl orbit, so the
// streams are independent for all practical purposes (the finalizer's
// avalanche breaks the arithmetic correlation between nearby indices).
//
// SplitMix implements rand.Source64, so a per-worker rand.Rand can be
// rebased onto a new stream between samples with Reseed — no allocation on
// the per-sample path. rand.Rand keeps no hidden buffer for Int63/Uint64/
// Float64/Intn/Perm/Shuffle/NormFloat64 (only Read buffers), so reseeding
// the source between samples is sound for everything the auditors draw.

const (
	splitmixGamma = 0x9E3779B97F4A7C15 // 2^64 / φ, the golden gamma
	mixMul1       = 0xBF58476D1CE4E5B9
	mixMul2       = 0x94D049BB133111EB
)

// mix64 is the splitmix64 finalizer: a bijective avalanche scramble.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mixMul1
	z = (z ^ (z >> 27)) * mixMul2
	return z ^ (z >> 31)
}

// streamState derives the initial splitmix state of stream index from a
// base seed: two finalizer rounds over the seed offset by the index's
// position in the Weyl orbit.
func streamState(seed int64, index uint64) uint64 {
	return mix64(mix64(uint64(seed) + splitmixGamma*(index+1)))
}

// SplitMix is a splitmix64 generator implementing rand.Source64.
type SplitMix struct {
	state uint64
}

// NewSplitMix returns a generator on stream index of the given seed.
func NewSplitMix(seed int64, index uint64) *SplitMix {
	return &SplitMix{state: streamState(seed, index)}
}

// Reseed rebases the generator onto stream index of seed. It is the
// zero-allocation path workers use between samples.
func (s *SplitMix) Reseed(seed int64, index uint64) {
	s.state = streamState(seed, index)
}

// Seed implements rand.Source (stream 0 of the given seed).
func (s *SplitMix) Seed(seed int64) { s.state = streamState(seed, 0) }

// Uint64 implements rand.Source64.
func (s *SplitMix) Uint64() uint64 {
	s.state += splitmixGamma
	return mix64(s.state)
}

// Int63 implements rand.Source.
func (s *SplitMix) Int63() int64 { return int64(s.Uint64() >> 1) }

// Stream returns a rand.Rand on stream index of seed. Each (seed, index)
// pair yields an independent, reproducible sequence regardless of what any
// other stream consumed — the property the parallel Monte Carlo engine
// needs for worker-count-invariant decisions.
func Stream(seed int64, index uint64) *rand.Rand {
	return rand.New(NewSplitMix(seed, index))
}

// DeriveSeed folds an index into a seed, yielding a decorrelated child
// seed. Auditors use it to give every decision its own base seed (keyed by
// the decision ordinal) so Monte Carlo samples are fresh per decision yet
// bit-reproducible across runs and worker counts.
func DeriveSeed(seed int64, index uint64) int64 {
	return int64(streamState(seed, index))
}
