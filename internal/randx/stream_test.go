package randx

import (
	"math/rand"
	"testing"
)

// Streams must be pure functions of (seed, index): the same pair yields
// the same sequence no matter what any other stream consumed.
func TestStreamDeterministic(t *testing.T) {
	a := Stream(42, 7)
	b := Stream(42, 7)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestStreamIndependenceFromConsumption(t *testing.T) {
	// Reference: stream 5, untouched neighbours.
	want := make([]float64, 20)
	ref := Stream(99, 5)
	for i := range want {
		want[i] = ref.Float64()
	}
	// Same stream after heavy consumption of streams 0..4.
	for idx := uint64(0); idx < 5; idx++ {
		s := Stream(99, idx)
		for i := 0; i < 1000; i++ {
			s.Float64()
		}
	}
	got := Stream(99, 5)
	for i := range want {
		if v := got.Float64(); v != want[i] {
			t.Fatalf("draw %d changed after sibling consumption: %g != %g", i, v, want[i])
		}
	}
}

// Reseed must rebase an existing source onto exactly the sequence a fresh
// stream produces — the zero-allocation per-sample path of the engine.
func TestReseedMatchesFreshStream(t *testing.T) {
	src := NewSplitMix(7, 0)
	rng := rand.New(src)
	for idx := uint64(0); idx < 10; idx++ {
		src.Reseed(7, idx)
		fresh := Stream(7, idx)
		for i := 0; i < 10; i++ {
			if a, b := rng.Float64(), fresh.Float64(); a != b {
				t.Fatalf("stream %d draw %d: reseeded %g != fresh %g", idx, i, a, b)
			}
		}
	}
}

// rand.Rand must not buffer across Reseed for the draw kinds the auditors
// use (Float64, Intn, NormFloat64, Perm): after a Reseed mid-sequence the
// output must still equal a fresh stream's.
func TestReseedMidSequenceNoHiddenBuffer(t *testing.T) {
	src := NewSplitMix(3, 0)
	rng := rand.New(src)
	rng.Float64()
	rng.Intn(17)
	rng.NormFloat64()
	rng.Perm(5)
	src.Reseed(3, 9)
	fresh := Stream(3, 9)
	if a, b := rng.NormFloat64(), fresh.NormFloat64(); a != b {
		t.Fatalf("NormFloat64 after mid-sequence reseed: %g != %g", a, b)
	}
	if a, b := rng.Intn(1000), fresh.Intn(1000); a != b {
		t.Fatalf("Intn after mid-sequence reseed: %d != %d", a, b)
	}
}

func TestAdjacentStreamsDiffer(t *testing.T) {
	// Adjacent indices and adjacent seeds must land far apart; a weak mix
	// would correlate them.
	seen := map[uint64]bool{}
	for idx := uint64(0); idx < 100; idx++ {
		v := NewSplitMix(12345, idx).Uint64()
		if seen[v] {
			t.Fatalf("stream %d repeats an earlier first draw", idx)
		}
		seen[v] = true
	}
	for seed := int64(0); seed < 100; seed++ {
		v := NewSplitMix(seed, 0).Uint64()
		if seen[v] {
			t.Fatalf("seed %d collides with an earlier stream", seed)
		}
		seen[v] = true
	}
}

func TestDeriveSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for i := uint64(0); i < 1000; i++ {
		s := DeriveSeed(12345, i)
		if seen[s] {
			t.Fatalf("DeriveSeed collision at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("distinct base seeds must derive distinct children")
	}
}
