// Package randx provides deterministic, seedable random-number utilities
// used throughout the auditing library: duplicate-free uniform datasets,
// uniform random query subsets, and weighted choices.
//
// Everything in this package is built on math/rand.Rand so that
// experiments, tests and the simulatable auditors themselves are fully
// reproducible from a single seed. The auditors in this module never touch
// global randomness.
package randx

import (
	"math/rand"
	"sort"
)

// New returns a deterministic generator seeded with seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives a new independent-looking generator from rng. It is used
// to hand child components their own streams so that consuming randomness
// in one component does not perturb another's sequence.
func Split(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(rng.Int63()))
}

// UniformDataset returns n values drawn independently and uniformly from
// [lo, hi).
func UniformDataset(rng *rand.Rand, n int, lo, hi float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + rng.Float64()*(hi-lo)
	}
	return xs
}

// DuplicateFreeDataset returns n values drawn uniformly from [lo, hi)
// conditioned on all values being distinct. The duplicate event has
// probability zero in the continuous model; with float64 it is merely
// astronomically unlikely, but we resample to keep the guarantee exact
// because the no-duplicates assumption is load-bearing for the synopsis
// blackbox of Section 2.2.
func DuplicateFreeDataset(rng *rand.Rand, n int, lo, hi float64) []float64 {
	for {
		xs := UniformDataset(rng, n, lo, hi)
		if distinct(xs) {
			return xs
		}
	}
}

func distinct(xs []float64) bool {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return false
		}
	}
	return true
}

// Subset returns a uniformly random subset of {0..n-1}: each element is
// included independently with probability 1/2. If the result is empty it
// is resampled, matching the paper's model of a query drawn uniformly at
// random from the set of all (nonempty) sum queries over the data.
func Subset(rng *rand.Rand, n int) []int {
	for {
		var q []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				q = append(q, i)
			}
		}
		if len(q) > 0 {
			return q
		}
	}
}

// SubsetOfSize returns a uniformly random k-element subset of {0..n-1}
// in sorted order, using a partial Fisher–Yates shuffle.
func SubsetOfSize(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return perm
}

// SubsetSizeBetween returns a uniformly random subset whose size is drawn
// uniformly from [minSize, maxSize] (clamped to [1, n]).
func SubsetSizeBetween(rng *rand.Rand, n, minSize, maxSize int) []int {
	if minSize < 1 {
		minSize = 1
	}
	if maxSize > n {
		maxSize = n
	}
	if minSize > maxSize {
		minSize = maxSize
	}
	k := minSize + rng.Intn(maxSize-minSize+1)
	return SubsetOfSize(rng, n, k)
}

// Range returns the sorted contiguous index range [start, start+width) for
// a uniformly random start, modelling a one-dimensional range predicate
// over records sorted on a public attribute.
func Range(rng *rand.Rand, n, width int) []int {
	if width > n {
		width = n
	}
	start := rng.Intn(n - width + 1)
	q := make([]int, width)
	for i := range q {
		q[i] = start + i
	}
	return q
}

// WeightedIndex draws an index i with probability weights[i]/sum(weights).
// Weights must be non-negative with a positive sum; otherwise it returns -1.
func WeightedIndex(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return -1
		}
		total += w
	}
	if total <= 0 {
		return -1
	}
	r := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// Shuffled returns a shuffled copy of xs.
func Shuffled(rng *rand.Rand, xs []int) []int {
	out := append([]int(nil), xs...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
