package extreme

// Brute-force oracle used to validate the extreme-element analysis on
// small instances. Only the relative order of elements against the
// distinct answer values matters for max/min constraints, so every
// dataset is equivalent to a "slot assignment": each element either
// equals one of the answer values exactly, or lies strictly inside one of
// the open intervals they delimit. Exact slots are exclusive (the data is
// duplicate-free); interval slots can host arbitrarily many elements at
// distinct reals.

import "sort"

// slot encoding: even s = 2j   → open interval number j (j = 0..m),
//                odd  s = 2k+1 → exactly the k-th smallest answer value.
type oracle struct {
	n      int
	cons   []Constraint
	values []float64 // sorted distinct answer values
}

func newOracle(n int, cons []Constraint) *oracle {
	vset := map[float64]bool{}
	for _, c := range cons {
		vset[c.Value] = true
	}
	values := make([]float64, 0, len(vset))
	for v := range vset {
		values = append(values, v)
	}
	sort.Float64s(values)
	return &oracle{n: n, cons: cons, values: values}
}

func (o *oracle) numSlots() int { return 2*len(o.values) + 1 }

// slotBelowEq reports whether every real in slot s is ≤ v (strict: < v).
func (o *oracle) slotBelow(s int, v float64, strict bool) bool {
	if s%2 == 1 {
		sv := o.values[s/2]
		if strict {
			return sv < v
		}
		return sv <= v
	}
	// Interval j = s/2 spans (values[j-1], values[j]); j=0 is (-inf, v_0),
	// j=m is (v_{m-1}, +inf). All members are < values[j] when j < m.
	j := s / 2
	if j == len(o.values) {
		return false // unbounded above
	}
	return o.values[j] <= v
}

// slotAbove reports whether every real in slot s is ≥ v (strict: > v).
func (o *oracle) slotAbove(s int, v float64, strict bool) bool {
	if s%2 == 1 {
		sv := o.values[s/2]
		if strict {
			return sv > v
		}
		return sv >= v
	}
	j := s / 2
	if j == 0 {
		return false // unbounded below
	}
	return o.values[j-1] >= v
}

func (o *oracle) exactly(s int, v float64) bool {
	return s%2 == 1 && o.values[s/2] == v
}

// satisfies checks one full assignment against all constraints.
func (o *oracle) satisfies(slots []int) bool {
	// Exact slots exclusive.
	seen := map[int]bool{}
	for _, s := range slots {
		if s%2 == 1 {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
	}
	for _, c := range o.cons {
		hit := false
		for _, i := range c.Set {
			s := slots[i]
			strict := c.Rel == RelBoundStrict
			if c.IsMax {
				if !o.slotBelow(s, c.Value, strict) {
					return false
				}
			} else {
				if !o.slotAbove(s, c.Value, strict) {
					return false
				}
			}
			if c.Rel == RelEq && o.exactly(s, c.Value) {
				hit = true
			}
		}
		if c.Rel == RelEq && !hit {
			return false
		}
	}
	return true
}

// solve enumerates all assignments. It returns whether any satisfies the
// constraints and, for each element, the set of slots it takes across
// satisfying assignments.
func (o *oracle) solve() (consistent bool, slotSets []map[int]bool) {
	slotSets = make([]map[int]bool, o.n)
	for i := range slotSets {
		slotSets[i] = map[int]bool{}
	}
	slots := make([]int, o.n)
	var rec func(i int)
	found := false
	rec = func(i int) {
		if i == o.n {
			if o.satisfies(slots) {
				found = true
				for j, s := range slots {
					slotSets[j][s] = true
				}
			}
			return
		}
		for s := 0; s < o.numSlots(); s++ {
			slots[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	return found, slotSets
}

// determined returns the elements whose value is the same exact answer
// value in every satisfying assignment — the classical-compromise
// notion of "uniquely determined".
func (o *oracle) determined(slotSets []map[int]bool) map[int]float64 {
	out := map[int]float64{}
	for i, set := range slotSets {
		if len(set) != 1 {
			continue
		}
		for s := range set {
			if s%2 == 1 {
				out[i] = o.values[s/2]
			}
		}
	}
	return out
}
