package extreme

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickPinsMonotone: on true histories, adding another true answer
// never un-pins an element and never flips a consistent history to
// inconsistent.
func TestQuickPinsMonotone(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		xs := distinctSmall(rng, n)
		var cons []Constraint
		prevPinned := map[int]float64{}
		for step := 0; step < 6; step++ {
			set := randSet(rng, n)
			isMax := rng.Intn(2) == 0
			cons = append(cons, Constraint{
				Set: set, Value: extremeOf(xs, set, isMax), IsMax: isMax, Rel: RelEq,
			})
			res := Analyze(n, cons)
			if !res.Consistent {
				return false
			}
			for i, v := range prevPinned {
				if got, ok := res.Pinned[i]; !ok || got != v {
					return false // a pin was lost or changed
				}
			}
			for i, v := range res.Pinned {
				if v != xs[i] {
					return false // pins must match truth
				}
				prevPinned[i] = v
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExtremesShrink: extreme sets only shrink as constraints
// accumulate on a fixed query (same query re-analyzed with a longer
// prefix of the history).
func TestQuickExtremesShrink(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		xs := distinctSmall(rng, n)
		first := randSet(rng, n)
		cons := []Constraint{{Set: first, Value: extremeOf(xs, first, true), IsMax: true, Rel: RelEq}}
		prev := Analyze(n, cons).Extremes[0]
		for step := 0; step < 5; step++ {
			set := randSet(rng, n)
			isMax := rng.Intn(2) == 0
			cons = append(cons, Constraint{
				Set: set, Value: extremeOf(xs, set, isMax), IsMax: isMax, Rel: RelEq,
			})
			res := Analyze(n, cons)
			if !res.Consistent {
				return false
			}
			cur := res.Extremes[0]
			// cur ⊆ prev.
			for _, e := range cur {
				if !prev.Contains(e) {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(73))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
