package extreme

import "queryaudit/internal/synopsis"

// FromSynopsis converts a combined max+min synopsis into the constraint
// list the analysis consumes. Because the synopsis is an O(n)-size
// information-preserving compression of the answered history (Section
// 2.2), auditors analyze these constraints instead of the raw query log.
func FromSynopsis(b *synopsis.MaxMin) []Constraint {
	var cons []Constraint
	for _, p := range b.MaxPreds() {
		cons = append(cons, Constraint{Set: p.Set, Value: p.Value, IsMax: true, Rel: relOf(p.Op)})
	}
	for _, p := range b.MinPreds() {
		cons = append(cons, Constraint{Set: p.Set, Value: p.Value, IsMax: false, Rel: relOf(p.Op)})
	}
	return cons
}

func relOf(op synopsis.Op) Rel {
	switch op {
	case synopsis.OpEq:
		return RelEq
	case synopsis.OpLt:
		return RelBoundStrict
	default:
		return RelBoundWeak
	}
}
