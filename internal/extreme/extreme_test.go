package extreme

import (
	"math/rand"
	"sort"
	"testing"

	"queryaudit/internal/query"
)

func maxCon(v float64, idx ...int) Constraint {
	return Constraint{Set: query.NewSet(idx...), Value: v, IsMax: true, Rel: RelEq}
}

func minCon(v float64, idx ...int) Constraint {
	return Constraint{Set: query.NewSet(idx...), Value: v, IsMax: false, Rel: RelEq}
}

// TestSecureTwoExtremes: one max query with several candidates is secure.
func TestSecureTwoExtremes(t *testing.T) {
	r := Analyze(3, []Constraint{maxCon(9, 0, 1, 2)})
	if !r.Consistent || r.Compromised {
		t.Fatalf("got %+v, want consistent and uncompromised", r)
	}
	if len(r.Extremes[0]) != 3 {
		t.Errorf("extremes = %v, want all three elements", r.Extremes[0])
	}
}

// TestSingletonQueryCompromises: max over a single element reveals it.
func TestSingletonQueryCompromises(t *testing.T) {
	r := Analyze(2, []Constraint{maxCon(5, 0)})
	if !r.Consistent || !r.Compromised {
		t.Fatalf("got %+v, want compromised", r)
	}
	if v, ok := r.Pinned[0]; !ok || v != 5 {
		t.Errorf("pinned = %v, want {0:5}", r.Pinned)
	}
}

// TestPaperOverlapExample: the Section 4 example — max{a,b,c}=9 then
// max{a,d,e}=9 forces x_a = 9 (the only common element).
func TestPaperOverlapExample(t *testing.T) {
	r := Analyze(5, []Constraint{
		maxCon(9, 0, 1, 2),
		maxCon(9, 0, 3, 4),
	})
	if !r.Consistent || !r.Compromised {
		t.Fatalf("got %+v, want consistent and compromised", r)
	}
	if v, ok := r.Pinned[0]; !ok || v != 9 {
		t.Errorf("pinned = %v, want x0 = 9", r.Pinned)
	}
}

// TestTheorem3EqualMaxMin: a max query and a min query with the same
// answer compromise the shared element.
func TestTheorem3EqualMaxMin(t *testing.T) {
	r := Analyze(4, []Constraint{
		maxCon(5, 0, 1, 2),
		minCon(5, 2, 3),
	})
	if !r.Consistent || !r.Compromised {
		t.Fatalf("got %+v, want consistent and compromised", r)
	}
	if v, ok := r.Pinned[2]; !ok || v != 5 {
		t.Errorf("pinned = %v, want x2 = 5", r.Pinned)
	}
}

// TestEqualMaxMinDisjointInconsistent: equal answers over disjoint sets
// would require a duplicated value.
func TestEqualMaxMinDisjointInconsistent(t *testing.T) {
	r := Analyze(4, []Constraint{
		maxCon(5, 0, 1),
		minCon(5, 2, 3),
	})
	if r.Consistent {
		t.Fatalf("got %+v, want inconsistent", r)
	}
}

// TestTrickleEffect: pinning in one query ripples into another.
func TestTrickleEffect(t *testing.T) {
	// min{0,1}=3 and max{1,2}=3: witness is the shared element 1 → x1=3.
	// Then max{0,2,3}=7 with x0<3 (x0 ≥ 3 from min? no: x0 ≥ 3).
	// Build a chain instead: max{0,1}=5, min{0,1}=5 is inconsistent
	// (|S∩S|=2). Use: max{0,1}=5, max{1,2}=5 → pin x1=5; then
	// min{1,2,3}=5 → witness must be 1 (x2<5 from? no...).
	r := Analyze(4, []Constraint{
		maxCon(5, 0, 1),
		maxCon(5, 1, 2),
		minCon(2, 0, 3),
	})
	if !r.Consistent || !r.Compromised {
		t.Fatalf("got %+v, want compromised (x1 pinned to 5)", r)
	}
	if v, ok := r.Pinned[1]; !ok || v != 5 {
		t.Errorf("pinned = %v, want x1 = 5", r.Pinned)
	}
	// x0 and x3: min=2 over {0,3}; x0 < 5 strictly (lost max witness) —
	// still two extreme candidates, no further pins.
	if len(r.Pinned) != 1 {
		t.Errorf("pinned = %v, want exactly x1", r.Pinned)
	}
}

// TestThreeWayEmptyIntersection: three max queries with one answer and
// empty common intersection cannot all hold.
func TestThreeWayEmptyIntersection(t *testing.T) {
	r := Analyze(3, []Constraint{
		maxCon(5, 0, 1),
		maxCon(5, 1, 2),
		maxCon(5, 0, 2),
	})
	if r.Consistent {
		t.Fatalf("got %+v, want inconsistent (no common witness)", r)
	}
}

// TestStrictConstraintBounds: strict synopsis predicates only contribute
// bounds.
func TestStrictConstraintBounds(t *testing.T) {
	r := Analyze(3, []Constraint{
		{Set: query.NewSet(0, 1), Value: 5, IsMax: true, Rel: RelBoundStrict}, // x0,x1 < 5
		maxCon(5, 1, 2),
	})
	if !r.Consistent {
		t.Fatalf("got %+v, want consistent", r)
	}
	// x1 < 5 strictly, so the witness of max=5 must be x2.
	if !r.Compromised {
		t.Fatalf("got %+v, want compromised (x2 = 5 forced)", r)
	}
	if v, ok := r.Pinned[2]; !ok || v != 5 {
		t.Errorf("pinned = %v, want x2 = 5", r.Pinned)
	}
}

// TestAgainstOracleTrueHistories compares the analysis with brute force
// on answered histories generated from real duplicate-free datasets
// (always consistent; compromise flags and pinned sets must agree).
func TestAgainstOracleTrueHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(4)
		xs := distinctSmall(rng, n)
		tq := 1 + rng.Intn(4)
		var cons []Constraint
		for k := 0; k < tq; k++ {
			set := randSet(rng, n)
			isMax := rng.Intn(2) == 0
			v := extremeOf(xs, set, isMax)
			cons = append(cons, Constraint{Set: set, Value: v, IsMax: isMax, Rel: RelEq})
		}
		got := Analyze(n, cons)
		if !got.Consistent {
			t.Fatalf("trial %d: true history deemed inconsistent: %v (xs=%v)", trial, cons, xs)
		}
		o := newOracle(n, cons)
		consistent, slotSets := o.solve()
		if !consistent {
			t.Fatalf("trial %d: oracle says inconsistent for a true history?! %v (xs=%v)", trial, cons, xs)
		}
		wantPinned := o.determined(slotSets)
		if got.Compromised != (len(wantPinned) > 0) {
			t.Fatalf("trial %d: compromised=%v, oracle determined=%v\ncons=%v xs=%v",
				trial, got.Compromised, wantPinned, cons, xs)
		}
		if !samePins(got.Pinned, wantPinned) {
			t.Fatalf("trial %d: pinned=%v, oracle=%v\ncons=%v xs=%v", trial, got.Pinned, wantPinned, cons, xs)
		}
	}
}

// TestAgainstOracleArbitrary compares consistency classification on
// arbitrary (frequently inconsistent) constraint sets.
func TestAgainstOracleArbitrary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 600; trial++ {
		n := 2 + rng.Intn(3)
		tq := 1 + rng.Intn(4)
		var cons []Constraint
		for k := 0; k < tq; k++ {
			cons = append(cons, Constraint{
				Set:   randSet(rng, n),
				Value: float64(1 + rng.Intn(4)),
				IsMax: rng.Intn(2) == 0,
				Rel:   RelEq,
			})
		}
		got := Analyze(n, cons)
		o := newOracle(n, cons)
		wantConsistent, slotSets := o.solve()
		if got.Consistent != wantConsistent {
			t.Fatalf("trial %d: Consistent=%v, oracle=%v\ncons=%v", trial, got.Consistent, wantConsistent, cons)
		}
		if !wantConsistent {
			continue
		}
		wantPinned := o.determined(slotSets)
		if got.Compromised != (len(wantPinned) > 0) {
			t.Fatalf("trial %d: compromised=%v, oracle determined=%v\ncons=%v", trial, got.Compromised, wantPinned, cons)
		}
		if !samePins(got.Pinned, wantPinned) {
			t.Fatalf("trial %d: pinned=%v, oracle=%v\ncons=%v", trial, got.Pinned, wantPinned, cons)
		}
	}
}

func samePins(a, b map[int]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func distinctSmall(rng *rand.Rand, n int) []float64 {
	for {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(1 + rng.Intn(6))
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		ok := true
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				ok = false
			}
		}
		if ok {
			return xs
		}
	}
}

func randSet(rng *rand.Rand, n int) query.Set {
	for {
		var q []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				q = append(q, i)
			}
		}
		if len(q) > 0 {
			return query.NewSet(q...)
		}
	}
}

func extremeOf(xs []float64, q query.Set, isMax bool) float64 {
	best := xs[q[0]]
	for _, i := range q[1:] {
		if (isMax && xs[i] > best) || (!isMax && xs[i] < best) {
			best = xs[i]
		}
	}
	return best
}
