// Package extreme implements the extreme-element analysis of Section 4:
// Algorithm 4 with its trickle effect, the compromise characterization of
// Theorem 3, and the consistency characterization of Theorem 4, for bags
// of max and min queries over a duplicate-free dataset.
//
// The extreme elements of an answered query (Q, a) are the elements that
// could still be the witness achieving a. The analysis alternates three
// tightenings until a fixpoint:
//
//  1. bound propagation — μ_j / λ_j from the answers covering j;
//  2. same-answer intersection — all max (resp. min) queries with the
//     same answer share one witness, so their extreme sets intersect;
//  3. pinning — a query with a single extreme element determines that
//     element's value exactly, which removes it from the extreme sets of
//     every query with a different answer (the trickle effect).
//
// The dataset is compromised (Theorem 3) iff some query ends with one
// extreme element or a max and a min query share an answer — both of
// which surface here as a *pinned* element. Answers are inconsistent
// (Theorem 4) iff some query loses all its extreme elements, some
// element's range empties, or two elements would be pinned to one value
// (a duplicate).
package extreme

import (
	"math"

	"queryaudit/internal/query"
)

// Rel is the relation a constraint asserts.
type Rel int

const (
	// RelEq is an answered query ([max(Q)=a] / [min(Q)=a]) carrying a
	// witness obligation: some element attains a.
	RelEq Rel = iota
	// RelBoundStrict is a strict group bound ([max(Q)<a] / [min(Q)>a])
	// produced by the synopsis blackbox; bounds only, no witness.
	RelBoundStrict
	// RelBoundWeak is a non-strict group bound ([max(Q)≤a] / [min(Q)≥a])
	// left behind when an update retires a potential witness.
	RelBoundWeak
)

// Constraint is one input fact.
type Constraint struct {
	Set   query.Set
	Value float64
	IsMax bool
	Rel   Rel
}

// Result is the outcome of the analysis.
type Result struct {
	// Consistent reports whether some duplicate-free dataset satisfies
	// all constraints (Theorem 4).
	Consistent bool
	// Compromised reports whether some element's value is uniquely
	// determined (Theorem 3). Meaningless when !Consistent.
	Compromised bool
	// Pinned maps element index → its uniquely determined value.
	Pinned map[int]float64
	// Extremes[k] is the final extreme-element set of the k-th Eq input
	// constraint (indexed in input order, skipping strict constraints).
	Extremes []query.Set
}

type bound struct {
	v      float64
	strict bool
}

// analysis carries the fixpoint state.
type analysis struct {
	n    int
	cons []Constraint
	// eqIdx lists indices into cons of the Eq constraints.
	eqIdx []int
	ub    []bound
	lb    []bound
	// pinnedVal maps a value to the single element pinned to it.
	pinnedVal map[float64]int
	pinned    map[int]float64
	bad       bool // inconsistency latch
}

// Analyze runs the full fixpoint over n elements.
func Analyze(n int, cons []Constraint) Result {
	a := &analysis{
		n:         n,
		cons:      cons,
		ub:        make([]bound, n),
		lb:        make([]bound, n),
		pinnedVal: make(map[float64]int),
		pinned:    make(map[int]float64),
	}
	for i := 0; i < n; i++ {
		a.ub[i] = bound{v: math.Inf(1)}
		a.lb[i] = bound{v: math.Inf(-1)}
	}
	for k, c := range cons {
		if c.Rel == RelEq {
			a.eqIdx = append(a.eqIdx, k)
		}
		strict := c.Rel == RelBoundStrict
		for _, j := range c.Set {
			if c.IsMax {
				a.tightenUB(j, bound{v: c.Value, strict: strict})
			} else {
				a.tightenLB(j, bound{v: c.Value, strict: strict})
			}
		}
	}
	extremes := a.run()
	return Result{
		Consistent:  !a.bad,
		Compromised: !a.bad && len(a.pinned) > 0,
		Pinned:      a.pinned,
		Extremes:    extremes,
	}
}

func (a *analysis) tightenUB(j int, b bound) {
	cur := a.ub[j]
	if b.v < cur.v || (b.v == cur.v && b.strict && !cur.strict) {
		a.ub[j] = b
	}
}

func (a *analysis) tightenLB(j int, b bound) {
	cur := a.lb[j]
	if b.v > cur.v || (b.v == cur.v && b.strict && !cur.strict) {
		a.lb[j] = b
	}
}

// rangeEmpty reports whether element j's feasible range is empty.
func (a *analysis) rangeEmpty(j int) bool {
	lo, hi := a.lb[j], a.ub[j]
	if lo.v > hi.v {
		return true
	}
	if lo.v == hi.v {
		return lo.strict || hi.strict
	}
	return false
}

// canEqual reports whether element j could take value v: v must lie in
// j's range and no *other* element may already be pinned to v (values
// are duplicate-free).
func (a *analysis) canEqual(j int, v float64) bool {
	if other, ok := a.pinnedVal[v]; ok && other != j {
		return false
	}
	hi := a.ub[j]
	if v > hi.v || (v == hi.v && hi.strict) {
		return false
	}
	lo := a.lb[j]
	if v < lo.v || (v == lo.v && lo.strict) {
		return false
	}
	return true
}

// pin records x_j = v, flagging inconsistency when another element
// already owns v or j's range excludes v.
func (a *analysis) pin(j int, v float64) {
	if prev, ok := a.pinned[j]; ok {
		if prev != v {
			a.bad = true
		}
		return
	}
	if other, ok := a.pinnedVal[v]; ok && other != j {
		a.bad = true
		return
	}
	if !a.canEqual(j, v) {
		a.bad = true
		return
	}
	a.pinned[j] = v
	a.pinnedVal[v] = j
	a.tightenUB(j, bound{v: v})
	a.tightenLB(j, bound{v: v})
}

// run iterates the three tightenings to a fixpoint and returns the final
// extreme sets of the Eq constraints.
func (a *analysis) run() []query.Set {
	extremes := make([]query.Set, len(a.eqIdx))
	for iter := 0; ; iter++ {
		if a.bad {
			return extremes
		}
		// Squeeze pins: elements whose range collapsed to a point.
		for j := 0; j < a.n; j++ {
			if a.rangeEmpty(j) {
				a.bad = true
				return extremes
			}
			if a.lb[j].v == a.ub[j].v && !a.lb[j].strict && !a.ub[j].strict {
				a.pin(j, a.lb[j].v)
				if a.bad {
					return extremes
				}
			}
		}

		// Recompute extreme sets from current bounds.
		for e, k := range a.eqIdx {
			c := a.cons[k]
			var E query.Set
			for _, j := range c.Set {
				if a.canEqual(j, c.Value) {
					E = append(E, j)
				}
			}
			if len(E) == 0 {
				a.bad = true
				return extremes
			}
			extremes[e] = E
		}

		changed := false

		// Same-answer intersection within each kind: all max queries
		// answering a share one witness (likewise min).
		changed = a.intersectSameAnswer(extremes, true) || changed
		if a.bad {
			return extremes
		}
		changed = a.intersectSameAnswer(extremes, false) || changed
		if a.bad {
			return extremes
		}

		// A max query and a min query with the same answer share their
		// witness; if their extreme sets no longer meet, no dataset fits.
		minByValue := make(map[float64][]int)
		for e, k := range a.eqIdx {
			if c := a.cons[k]; !c.IsMax {
				minByValue[c.Value] = append(minByValue[c.Value], e)
			}
		}
		for e1, k1 := range a.eqIdx {
			c1 := a.cons[k1]
			if !c1.IsMax {
				continue
			}
			for _, e2 := range minByValue[c1.Value] {
				inter := extremes[e1].Intersect(extremes[e2])
				switch {
				case len(inter) == 0:
					a.bad = true
					return extremes
				case len(inter) == 1:
					if _, ok := a.pinned[inter[0]]; !ok {
						a.pin(inter[0], c1.Value)
						changed = true
					}
				}
			}
		}
		if a.bad {
			return extremes
		}

		// Pinning singleton extreme sets (the trickle source).
		for e, k := range a.eqIdx {
			if len(extremes[e]) == 1 {
				j := extremes[e][0]
				if _, ok := a.pinned[j]; !ok {
					a.pin(j, a.cons[k].Value)
					changed = true
				}
			}
		}
		if a.bad {
			return extremes
		}

		if !changed {
			return extremes
		}
	}
}

// intersectSameAnswer applies step 3 of Algorithm 4 for one kind,
// returning whether anything changed. Elements expelled from an extreme
// set acquire a strict bound at the answer.
func (a *analysis) intersectSameAnswer(extremes []query.Set, isMax bool) bool {
	byValue := make(map[float64][]int) // value -> positions into eqIdx
	for e, k := range a.eqIdx {
		c := a.cons[k]
		if c.IsMax == isMax && c.Rel == RelEq {
			byValue[c.Value] = append(byValue[c.Value], e)
		}
	}
	changed := false
	for v, group := range byValue {
		if len(group) < 2 {
			continue
		}
		common := extremes[group[0]]
		for _, e := range group[1:] {
			common = common.Intersect(extremes[e])
		}
		if len(common) == 0 {
			a.bad = true
			return changed
		}
		for _, e := range group {
			for _, j := range extremes[e] {
				if common.Contains(j) {
					continue
				}
				// j cannot be the shared witness: strictly inside the
				// bound.
				if isMax {
					a.tightenUB(j, bound{v: v, strict: true})
				} else {
					a.tightenLB(j, bound{v: v, strict: true})
				}
				changed = true
			}
			extremes[e] = common.Clone()
		}
	}
	return changed
}
