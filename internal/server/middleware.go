package server

import (
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"queryaudit/internal/mcpar"
	"queryaudit/internal/metrics"
	"queryaudit/internal/replica"
)

// Options are the serving-path knobs. Zero values mean "use Defaults()";
// New applies Defaults first, so callers only override what they need.
type Options struct {
	// MaxBodyBytes caps every POST body via http.MaxBytesReader.
	MaxBodyBytes int64
	// MaxIndices bounds the index list accepted by /v1/queryset and by
	// each query inside /v1/prime.
	MaxIndices int
	// MaxPrimeQueries bounds the query list accepted by /v1/prime.
	MaxPrimeQueries int
	// PerClientConcurrency bounds in-flight requests per client IP;
	// 0 disables the limiter. Excess requests are rejected with 429.
	PerClientConcurrency int
	// AccessLog, when non-nil, receives one structured line per request
	// (method, path, status, bytes, duration, client).
	AccessLog *log.Logger
	// InstrumentEngine installs a metrics.EngineCollector as the
	// engine's observer (on by default; disable when the caller wires
	// its own core.Observer).
	InstrumentEngine bool
	// InstrumentMC installs a metrics.MCCollector as the Monte Carlo
	// observer on every MC-tunable auditor (on by default; a no-op when
	// no probabilistic auditor is registered).
	InstrumentMC bool
	// MCWorkers caps each decision's share of the shared Monte Carlo
	// scheduler: 0 leaves the auditors as configured (their own default
	// is GOMAXPROCS), 1 forces sequential decisions, n > 1 bounds the
	// per-decision cap. Decisions are identical at any setting for a
	// fixed seed.
	MCWorkers int
	// MCScheduler, when non-nil, is the shared assist pool installed on
	// every schedulable auditor (single-engine constructor only; session
	// deployments install it via the core.EngineSpec). Nil leaves
	// auditors on the process-wide default pool.
	MCScheduler *mcpar.Scheduler
	// DisableQueryIndex resolves /v1/query statements through the naive
	// per-request dataset scan instead of the shared indexed resolver —
	// the pre-index behaviour, kept as a kill switch and as the baseline
	// arm for benchmarks. Decisions are identical either way.
	DisableQueryIndex bool
	// QueryCacheEntries, when non-zero, sizes the statement/predicate
	// memos of a server-owned resolver (negative = unbounded) instead of
	// sharing the manager's default-sized one. Leave 0 to share the
	// deployment resolver.
	QueryCacheEntries int

	// ReadHeaderTimeout / ReadTimeout / WriteTimeout / IdleTimeout are
	// applied to the http.Server by Run and ListenAndServe.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
	// ShutdownTimeout bounds the graceful drain in Run.
	ShutdownTimeout time.Duration
}

// Defaults returns the production defaults documented in
// docs/DEPLOYMENT.md.
func Defaults() Options {
	return Options{
		MaxBodyBytes:      1 << 20, // 1 MiB
		MaxIndices:        100_000,
		MaxPrimeQueries:   1024,
		InstrumentEngine:  true,
		InstrumentMC:      true,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ShutdownTimeout:   10 * time.Second,
	}
}

// Option customizes a Server at construction.
type Option func(*Server)

// WithOptions replaces the serving options wholesale (start from
// Defaults() and tweak).
func WithOptions(o Options) Option { return func(s *Server) { s.opts = o } }

// WithMetrics records into an externally owned registry instead of an
// internal one (so the caller can read counters after shutdown).
func WithMetrics(reg *metrics.Registry) Option { return func(s *Server) { s.reg = reg } }

// WithAccessLog enables structured access logging.
func WithAccessLog(l *log.Logger) Option { return func(s *Server) { s.opts.AccessLog = l } }

// WithReadinessGate starts the server not-ready: /readyz and every
// session-scoped endpoint answer 503 until MarkReady is called. Use it
// when boot-time restoration (auditor snapshot, session-log replay)
// runs after the listener is already accepting.
func WithReadinessGate() Option { return func(s *Server) { s.gated = true } }

// WithReplication attaches a replication node: the /v1/replication/*
// endpoints mount, state-mutating endpoints answer 421 whenever the node
// is not the cluster primary, and sessions the node has quarantined
// after divergence detection answer 503 instead of serving state the
// primary never produced.
func WithReplication(n *replica.Node) Option { return func(s *Server) { s.repl = n } }

// httpMetrics holds the per-route HTTP counters and the request-latency
// histogram, pre-registered so handlers never take the registry mutex.
//
// Exported names:
//
//	http_requests_total            all requests
//	http_requests_total_<route>    per route (path pattern, slashes → _)
//	http_responses_total_<class>   2xx / 4xx / 5xx
//	http_throttled_total           429s from the per-client limiter
//	http_encode_failures_total     response bodies that failed to encode
//	http_request_seconds           end-to-end handler latency
type httpMetrics struct {
	total      *metrics.Counter
	perRoute   map[string]*metrics.Counter
	other      *metrics.Counter
	class2xx   *metrics.Counter
	class4xx   *metrics.Counter
	class5xx   *metrics.Counter
	throttled  *metrics.Counter
	encodeFail *metrics.Counter
	latency    *metrics.Histogram
}

// routes lists the served path patterns for per-route counters.
var routes = []string{
	"/v1/query", "/v1/queryset", "/v1/update", "/v1/stats", "/v1/schema",
	"/v1/journal", "/v1/knowledge", "/v1/prime", "/v1/sessions", "/v1/metrics",
	"/v1/replication/status", "/v1/replication/snapshot",
	"/v1/replication/stream", "/v1/replication/promote",
	"/v1/replication/demote",
	"/v1/cluster/node", "/v1/cluster/journal", "/v1/cluster/import",
	"/v1/cluster/forget", "/v1/cluster/config",
	"/healthz", "/readyz",
}

func routeCounterName(path string) string {
	return "http_requests_total" + strings.ReplaceAll(path, "/", "_")
}

func newHTTPMetrics(reg *metrics.Registry) *httpMetrics {
	m := &httpMetrics{
		total:      reg.Counter("http_requests_total"),
		perRoute:   make(map[string]*metrics.Counter, len(routes)),
		other:      reg.Counter("http_requests_total_other"),
		class2xx:   reg.Counter("http_responses_total_2xx"),
		class4xx:   reg.Counter("http_responses_total_4xx"),
		class5xx:   reg.Counter("http_responses_total_5xx"),
		throttled:  reg.Counter("http_throttled_total"),
		encodeFail: reg.Counter("http_encode_failures_total"),
		latency:    reg.Histogram("http_request_seconds", nil),
	}
	for _, r := range routes {
		m.perRoute[r] = reg.Counter(routeCounterName(r))
	}
	return m
}

func (m *httpMetrics) observe(path string, status int, elapsed time.Duration) {
	m.total.Inc()
	if c, ok := m.perRoute[path]; ok {
		c.Inc()
	} else {
		m.other.Inc()
	}
	switch {
	case status >= 500:
		m.class5xx.Inc()
	case status >= 400:
		m.class4xx.Inc()
	default:
		m.class2xx.Inc()
	}
	m.latency.ObserveDuration(elapsed)
}

// statusRecorder captures the status code and bytes written.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// clientLimiter bounds in-flight requests per client IP.
type clientLimiter struct {
	mu       sync.Mutex
	max      int
	inflight map[string]int
}

func newClientLimiter(max int) *clientLimiter {
	return &clientLimiter{max: max, inflight: map[string]int{}}
}

// acquire reports whether the client may proceed; release must be called
// iff it returned true.
func (l *clientLimiter) acquire(client string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight[client] >= l.max {
		return false
	}
	l.inflight[client]++
	return true
}

func (l *clientLimiter) release(client string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight[client] <= 1 {
		delete(l.inflight, client) // keep the map from accumulating idle clients
	} else {
		l.inflight[client]--
	}
}

// clientKey extracts the client IP from RemoteAddr (falling back to the
// whole string when it is not host:port).
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// middleware wraps the mux with (outermost first) per-client limiting,
// then metrics + access logging.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		client := clientKey(r)
		if s.limiter != nil {
			if !s.limiter.acquire(client) {
				s.httpM.throttled.Inc()
				s.httpM.observe(r.URL.Path, http.StatusTooManyRequests, 0)
				s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "too many concurrent requests from this client"})
				return
			}
			defer s.limiter.release(client)
		}
		if s.cview != nil {
			// Every response names the serving shard, so load generators
			// and proxies can attribute traffic without a second lookup.
			w.Header().Set("X-Shard-ID", s.cview.ShardID())
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.httpM.observe(r.URL.Path, rec.status, elapsed)
		if s.opts.AccessLog != nil {
			s.opts.AccessLog.Printf("method=%s path=%s status=%d bytes=%d duration=%s client=%s",
				r.Method, r.URL.Path, rec.status, rec.bytes, elapsed.Round(time.Microsecond), client)
		}
	})
}
