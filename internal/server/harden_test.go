package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/session"
)

// TestZeroAnswerNotOmitted: a legitimate answer of exactly 0 must appear
// in the JSON body as "answer":0 — with the old `omitempty` on a plain
// float64 it vanished and was indistinguishable from a denial's missing
// field.
func TestZeroAnswerNotOmitted(t *testing.T) {
	srv, _ := newTestServer(t, 20)
	// Zero both records, then sum them: answered, and exactly 0.
	for _, i := range []int{0, 1} {
		if _, out := postJSON(t, srv.URL+"/v1/update", UpdateRequest{Index: i, Value: 0}); out["ok"] != true {
			t.Fatalf("update %d failed: %v", i, out)
		}
	}
	raw, _ := json.Marshal(QuerySetRequest{Kind: "sum", Indices: []int{0, 1}})
	resp, err := http.Post(srv.URL+"/v1/queryset", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"answer":0`) {
		t.Fatalf("zero answer omitted from body: %s", body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Denied || out.Answer == nil || *out.Answer != 0 {
		t.Fatalf("round-trip = %+v, want denied=false answer=0", out)
	}
	// And a denial still omits the field entirely.
	raw, _ = json.Marshal(QuerySetRequest{Kind: "sum", Indices: []int{0}})
	resp2, err := http.Post(srv.URL+"/v1/queryset", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(body2), "answer") {
		t.Fatalf("denial should omit answer: %s", body2)
	}
}

// TestKnowledgeRace: GET /v1/knowledge while queries mutate auditor
// state — the old handler read auditor.Knowledge() without the engine
// lock and fails this test under -race.
func TestKnowledgeRace(t *testing.T) {
	srv, _ := newTestServer(t, 30)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			lo := i % 25
			raw, _ := json.Marshal(QuerySetRequest{Kind: "max", Indices: []int{lo, lo + 1, lo + 2}})
			resp, err := http.Post(srv.URL+"/v1/queryset", "application/json", bytes.NewReader(raw))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			resp, err := http.Get(srv.URL + "/v1/knowledge")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
}

// TestConcurrentLoad mixes every endpoint from many goroutines and then
// checks the no-breach accounting invariant: the engine's final
// answered+denied equals exactly the number of 200-with-outcome query
// responses the clients saw (no lost updates, no double counts, no torn
// stats).
func TestConcurrentLoad(t *testing.T) {
	srv, eng := newTestServer(t, 50)
	var answered, denied atomic.Int64
	var wg sync.WaitGroup
	client := srv.Client()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (g + i) % 5 {
				case 0: // SQL query
					lo := 21 + (g*3+i)%30
					raw, _ := json.Marshal(QueryRequest{SQL: fmt.Sprintf(
						"SELECT sum(salary) WHERE age BETWEEN %d AND %d", lo, lo+9)})
					resp, err := client.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(raw))
					if err != nil {
						continue
					}
					tallyOutcome(resp, &answered, &denied)
				case 1: // explicit query set
					lo := (g*5 + i) % 45
					raw, _ := json.Marshal(QuerySetRequest{Kind: "max", Indices: []int{lo, lo + 1, lo + 2, lo + 3}})
					resp, err := client.Post(srv.URL+"/v1/queryset", "application/json", bytes.NewReader(raw))
					if err != nil {
						continue
					}
					tallyOutcome(resp, &answered, &denied)
				case 2: // update
					raw, _ := json.Marshal(UpdateRequest{Index: (g + i) % 50, Value: float64(1000 * (g + i))})
					resp, err := client.Post(srv.URL+"/v1/update", "application/json", bytes.NewReader(raw))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				case 3: // knowledge
					resp, err := client.Get(srv.URL + "/v1/knowledge")
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				case 4: // stats must never be torn
					resp, err := client.Get(srv.URL + "/v1/stats")
					if err != nil {
						continue
					}
					var st StatsResponse
					json.NewDecoder(resp.Body).Decode(&st)
					resp.Body.Close()
					if st.Answered < 0 || st.Denied < 0 || st.Records != 50 {
						t.Errorf("bad stats snapshot: %+v", st)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := eng.Stats()
	if int64(st.Answered) != answered.Load() || int64(st.Denied) != denied.Load() {
		t.Fatalf("accounting breach: engine answered=%d denied=%d, clients saw answered=%d denied=%d",
			st.Answered, st.Denied, answered.Load(), denied.Load())
	}
	if answered.Load()+denied.Load() == 0 {
		t.Fatal("no queries were processed")
	}
}

// tallyOutcome counts a 200 query response as answered or denied and
// drains/ closes the body.
func tallyOutcome(resp *http.Response, answered, denied *atomic.Int64) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var out QueryResponse
	if json.NewDecoder(resp.Body).Decode(&out) != nil {
		return
	}
	if out.Denied {
		denied.Add(1)
	} else {
		answered.Add(1)
	}
}

// TestHealthz: liveness probe is served.
func TestHealthz(t *testing.T) {
	srv, _ := newTestServer(t, 5)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, out)
	}
}

// TestMetricsEndpoint: HTTP and engine counters are exported and move.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, 20)
	postJSON(t, srv.URL+"/v1/queryset", QuerySetRequest{Kind: "sum", Indices: []int{0, 1, 2, 3}})
	postJSON(t, srv.URL+"/v1/queryset", QuerySetRequest{Kind: "nope"})
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["http_requests_total"] < 2 {
		t.Fatalf("http_requests_total = %d, want >= 2", snap.Counters["http_requests_total"])
	}
	if snap.Counters["http_requests_total_v1_queryset"] != 2 {
		t.Fatalf("per-route counter = %d, want 2", snap.Counters["http_requests_total_v1_queryset"])
	}
	if snap.Counters["engine_answered_total_sum"] != 1 {
		t.Fatalf("engine_answered_total_sum = %d, want 1", snap.Counters["engine_answered_total_sum"])
	}
	if snap.Counters["http_responses_total_4xx"] < 1 {
		t.Fatalf("4xx counter = %d, want >= 1", snap.Counters["http_responses_total_4xx"])
	}
	if snap.Histograms["http_request_seconds"].Count < 2 {
		t.Fatalf("latency histogram count = %d, want >= 2", snap.Histograms["http_request_seconds"].Count)
	}
	if snap.Histograms["engine_decide_seconds"].Count != 1 {
		t.Fatalf("decide histogram count = %d, want 1", snap.Histograms["engine_decide_seconds"].Count)
	}
}

// TestMetricsPromScrapeBuffered: the Prometheus exposition is rendered
// to a buffer before the status line goes out (errsink finding: a
// mid-render failure used to tear the 200 body), so a successful scrape
// carries a Content-Length the scraper can verify.
func TestMetricsPromScrapeBuffered(t *testing.T) {
	srv, _ := newTestServer(t, 20)
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	if resp.ContentLength != int64(len(body)) {
		t.Fatalf("Content-Length = %d, body is %d bytes", resp.ContentLength, len(body))
	}
	if !strings.Contains(string(body), "http_requests_total") {
		t.Fatalf("exposition missing counters:\n%s", body)
	}
}

// newLimitedServer builds a server with tight limits for the 413/429
// tests.
func newLimitedServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	n := 20
	ds := dataset.GenerateCompany(randx.New(1), dataset.DefaultCompanyConfig(n))
	eng := core.NewEngine(ds)
	eng.Use(sumfull.New(n), query.Sum)
	eng.Use(maxfull.New(n), query.Max)
	srv := httptest.NewServer(New(core.NewSDB(eng, "salary"), WithOptions(opts)))
	t.Cleanup(srv.Close)
	return srv
}

// TestBodyTooLarge: oversized POST bodies are 413, not 400.
func TestBodyTooLarge(t *testing.T) {
	opts := Defaults()
	opts.MaxBodyBytes = 64
	srv := newLimitedServer(t, opts)
	big := fmt.Sprintf(`{"sql": %q}`, strings.Repeat("x", 200))
	resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestTooManyIndices: index lists over the limit are 413 on both
// /v1/queryset and /v1/prime; the prime query-count limit too.
func TestTooManyIndices(t *testing.T) {
	opts := Defaults()
	opts.MaxIndices = 4
	opts.MaxPrimeQueries = 2
	srv := newLimitedServer(t, opts)
	resp, _ := postJSON(t, srv.URL+"/v1/queryset", QuerySetRequest{Kind: "sum", Indices: []int{0, 1, 2, 3, 4}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("queryset over limit: status %d, want 413", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/prime", PrimeRequest{Queries: []QuerySetRequest{
		{Kind: "sum", Indices: []int{0, 1, 2, 3, 4}},
	}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("prime indices over limit: status %d, want 413", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/prime", PrimeRequest{Queries: []QuerySetRequest{
		{Kind: "sum", Indices: []int{0, 1}},
		{Kind: "sum", Indices: []int{0, 1}},
		{Kind: "sum", Indices: []int{0, 1}},
	}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("prime query count over limit: status %d, want 413", resp.StatusCode)
	}
	// At the limit still works.
	resp, out := postJSON(t, srv.URL+"/v1/queryset", QuerySetRequest{Kind: "sum", Indices: []int{0, 1, 2, 3}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("at-limit queryset: status %d %v", resp.StatusCode, out)
	}
}

// slowAuditor answers after a pause, to hold requests in flight.
type slowAuditor struct {
	delay time.Duration
}

func (a *slowAuditor) Name() string { return "slow" }
func (a *slowAuditor) Decide(query.Query) (audit.Decision, error) {
	time.Sleep(a.delay)
	return audit.Answer, nil
}
func (a *slowAuditor) Record(query.Query, float64) {}

// TestPerClientThrottle: with a concurrency cap of 1, parallel requests
// from the same client get 429s while one is in flight.
func TestPerClientThrottle(t *testing.T) {
	n := 10
	ds := dataset.FromValues(make([]float64, n))
	eng := core.NewEngine(ds)
	eng.Use(&slowAuditor{delay: 300 * time.Millisecond}, query.Sum)
	opts := Defaults()
	opts.PerClientConcurrency = 1
	srv := httptest.NewServer(New(core.NewSDB(eng, "salary"), WithOptions(opts)))
	t.Cleanup(srv.Close)

	var ok200, throttled atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			raw, _ := json.Marshal(QuerySetRequest{Kind: "sum", Indices: []int{g, g + 1}})
			resp, err := http.Post(srv.URL+"/v1/queryset", "application/json", bytes.NewReader(raw))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				throttled.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if ok200.Load() == 0 {
		t.Fatal("no request succeeded under the limiter")
	}
	if throttled.Load() == 0 {
		t.Fatal("no request was throttled despite cap=1 and 300ms handlers")
	}
}

// TestConcurrentAnalystChurn: many analysts hammer a session-mode
// server whose MaxLive is far below the analyst count, so engines are
// constantly evicted and rebuilt by journal replay while other requests
// are in flight. Every analyst runs the same fixed script, so (a) all
// twelve transcripts must be bit-identical — eviction, replay, and
// shard contention must never leak one analyst's history into
// another's decisions — and (b) each analyst's /v1/stats tallies must
// equal what that analyst's client observed. Run under -race this also
// exercises the manager's shard/session/dataset lock ordering.
func TestConcurrentAnalystChurn(t *testing.T) {
	const n, analysts, steps = 16, 12, 20
	ds := dataset.UniformDuplicateFree(randx.New(11), n, 1, 100)
	sp := core.NewEngineSpec(ds)
	sp.Register(func() (audit.Auditor, error) { return sumfull.New(n), nil }, query.Sum)
	sp.Register(func() (audit.Auditor, error) { return maxfull.New(n), nil }, query.Max)
	mgr, err := session.NewManager(sp, session.Config{MaxLive: 2, Shards: 4, NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	hs := httptest.NewServer(NewWithSessions(mgr, "salary"))
	t.Cleanup(hs.Close)

	// One fixed script, shared by every analyst.
	type move struct {
		kind    string
		indices []int
	}
	rng := randx.New(21)
	var script []move
	for i := 0; i < steps; i++ {
		kind := "sum"
		if i%3 == 2 {
			kind = "max"
		}
		perm := rng.Perm(n)
		script = append(script, move{kind: kind, indices: perm[:2+rng.Intn(6)]})
	}

	transcripts := make([][]string, analysts)
	tallies := make([]struct{ answered, denied int64 }, analysts)
	var wg sync.WaitGroup
	for a := 0; a < analysts; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			who := fmt.Sprintf("churn-%02d", a)
			for _, mv := range script {
				code, out := askAs(t, hs.URL, who, mv.kind, mv.indices)
				if code != http.StatusOK {
					t.Errorf("%s: status %d: %v", who, code, out)
					return
				}
				transcripts[a] = append(transcripts[a], fmt.Sprintf("denied=%v answer=%v", out["denied"], out["answer"]))
				if out["denied"] == true {
					tallies[a].denied++
				} else {
					tallies[a].answered++
				}
			}
		}(a)
	}
	wg.Wait()

	for a := 1; a < analysts; a++ {
		for i := range transcripts[0] {
			if transcripts[a][i] != transcripts[0][i] {
				t.Fatalf("analyst %d step %d diverged under churn: %s vs %s",
					a, i, transcripts[a][i], transcripts[0][i])
			}
		}
	}
	if tallies[0].answered == 0 || tallies[0].denied == 0 {
		t.Fatalf("degenerate script (answered=%d denied=%d)", tallies[0].answered, tallies[0].denied)
	}
	for a := 0; a < analysts; a++ {
		resp, err := http.Get(hs.URL + fmt.Sprintf("/v1/stats?analyst=churn-%02d", a))
		if err != nil {
			t.Fatal(err)
		}
		var st StatsResponse
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if int64(st.Answered) != tallies[a].answered || int64(st.Denied) != tallies[a].denied {
			t.Fatalf("analyst %d stats %+v, client saw answered=%d denied=%d",
				a, st, tallies[a].answered, tallies[a].denied)
		}
	}
}

// TestRunGracefulShutdown: Run drains an in-flight request after ctx
// cancellation and returns nil.
func TestRunGracefulShutdown(t *testing.T) {
	n := 10
	ds := dataset.FromValues(make([]float64, n))
	eng := core.NewEngine(ds)
	eng.Use(&slowAuditor{delay: 200 * time.Millisecond}, query.Sum)
	s := New(core.NewSDB(eng, "salary"))

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready
	base := "http://" + addr.String()

	// Fire a slow request, cancel mid-flight, and expect it to finish.
	reqDone := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(QuerySetRequest{Kind: "sum", Indices: []int{0, 1}})
		resp, err := http.Post(base+"/v1/queryset", "application/json", bytes.NewReader(raw))
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // request is now inside the slow decide
	cancel()
	if status := <-reqDone; status != http.StatusOK {
		t.Fatalf("in-flight request got %d, want 200 (drained gracefully)", status)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v, want nil on clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	// The socket is closed: new connections fail.
	if _, err := net.DialTimeout("tcp", addr.String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
