package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/maxminprob"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/metrics"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/session"
)

// newSessionServer builds a multi-analyst server over the given spec.
func newSessionServer(t *testing.T, sp *core.EngineSpec, cfg session.Config, opts ...Option) (*httptest.Server, *Server, *session.Manager) {
	t.Helper()
	cfg.NoJanitor = true
	mgr, err := session.NewManager(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	srv := NewWithSessions(mgr, "salary", opts...)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return hs, srv, mgr
}

// askAs posts one queryset request under the given analyst identity.
func askAs(t *testing.T, url, analyst, kind string, indices []int) (int, map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(QuerySetRequest{Kind: kind, Indices: indices})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/queryset", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if analyst != "" {
		req.Header.Set("X-Analyst-ID", analyst)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// TestSessionIsolationCompromiseSequence interleaves the paper's §2
// max-query compromise sequence (answer max over S, then over S minus
// its argmax — the second must be denied or the argmax's value is
// exposed) between two analysts, across the full and probabilistic
// auditor families. Isolation demands: each analyst's transcript equals
// a solo run, so A's history never denies (or loosens) B.
func TestSessionIsolationCompromiseSequence(t *testing.T) {
	n := 8
	fullDS := func() *dataset.Dataset { return dataset.UniformDuplicateFree(randx.New(5), n, 1, 100) }
	probDS := func() *dataset.Dataset { return dataset.UniformDuplicateFree(randx.New(5), n, 0, 1) }
	families := []struct {
		name string
		// wantDeny: the exact-disclosure auditors MUST deny the probe; the
		// probabilistic criterion tolerates bounded posterior drift and may
		// legitimately answer this short sequence (its denial behavior is
		// exercised by the internal/session determinism tests), so for it
		// the test asserts only transcript equality.
		wantDeny bool
		makeDS   func() *dataset.Dataset
		spec     func(ds *dataset.Dataset) *core.EngineSpec
	}{
		{"maxfull", true, fullDS, func(ds *dataset.Dataset) *core.EngineSpec {
			sp := core.NewEngineSpec(ds)
			sp.Register(func() (audit.Auditor, error) { return maxfull.New(n), nil }, query.Max)
			return sp
		}},
		{"maxminfull", true, fullDS, func(ds *dataset.Dataset) *core.EngineSpec {
			sp := core.NewEngineSpec(ds)
			sp.Register(func() (audit.Auditor, error) { return maxminfull.New(n), nil }, query.Max, query.Min)
			return sp
		}},
		{"maxminprob", false, probDS, func(ds *dataset.Dataset) *core.EngineSpec {
			sp := core.NewEngineSpec(ds)
			sp.Register(func() (audit.Auditor, error) {
				return maxminprob.New(n, maxminprob.Params{
					Lambda: 0.45, Gamma: 2, Delta: 0.2, T: 2,
					OuterSamples: 8, InnerSamples: 8, MixFactor: 1, Workers: 1, Seed: 12,
				})
			}, query.Max, query.Min)
			return sp
		}},
	}

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	argmax := func(ds *dataset.Dataset) int {
		best := 0
		for i := 1; i < n; i++ {
			if ds.Sensitive(i) > ds.Sensitive(best) {
				best = i
			}
		}
		return best
	}

	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			ds := fam.makeDS()
			am := argmax(ds)
			var rest []int
			for _, i := range all {
				if i != am {
					rest = append(rest, i)
				}
			}
			game := [][]int{all, rest}

			// Solo run: one analyst alone on a fresh deployment.
			solo := func() []map[string]any {
				hs, _, _ := newSessionServer(t, fam.spec(fam.makeDS()), session.Config{})
				var tr []map[string]any
				for _, set := range game {
					code, out := askAs(t, hs.URL, "solo", "max", set)
					if code != http.StatusOK {
						t.Fatalf("solo status %d: %v", code, out)
					}
					tr = append(tr, out)
				}
				return tr
			}()
			if fam.wantDeny && solo[1]["denied"] != true {
				t.Fatalf("%s: compromise probe should be denied solo: %v", fam.name, solo[1])
			}

			// Interleaved run: alice and bob alternate the same sequence on
			// one deployment.
			hs, _, _ := newSessionServer(t, fam.spec(ds), session.Config{})
			transcripts := map[string][]map[string]any{}
			for _, set := range game {
				for _, who := range []string{"alice", "bob"} {
					code, out := askAs(t, hs.URL, who, "max", set)
					if code != http.StatusOK {
						t.Fatalf("%s status %d: %v", who, code, out)
					}
					transcripts[who] = append(transcripts[who], out)
				}
			}
			for _, who := range []string{"alice", "bob"} {
				for i := range game {
					if fmt.Sprint(transcripts[who][i]) != fmt.Sprint(solo[i]) {
						t.Fatalf("%s: %s step %d diverged from solo: %v vs %v",
							fam.name, who, i, transcripts[who][i], solo[i])
					}
				}
			}
		})
	}
}

// TestAnalystIdentityPlumbing: header, query parameter, default
// fallback, and malformed IDs.
func TestAnalystIdentityPlumbing(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3, 4, 5})
	sp := core.NewEngineSpec(ds)
	sp.Register(func() (audit.Auditor, error) { return sumfull.New(5), nil }, query.Sum)
	hs, _, mgr := newSessionServer(t, sp, session.Config{})

	// Header identity.
	if code, _ := askAs(t, hs.URL, "alice", "sum", []int{0, 1}); code != http.StatusOK {
		t.Fatalf("header identity: %d", code)
	}
	// Query-parameter identity.
	resp, out := postJSON(t, hs.URL+"/v1/queryset?analyst=carol", QuerySetRequest{Kind: "sum", Indices: []int{0, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("param identity: %d %v", resp.StatusCode, out)
	}
	// No identity → default session.
	if code, _ := askAs(t, hs.URL, "", "sum", []int{0, 1}); code != http.StatusOK {
		t.Fatal("default identity should work")
	}
	for _, s := range mgr.Sessions() {
		switch s.Analyst {
		case "alice", "carol", session.DefaultAnalyst:
		default:
			t.Fatalf("unexpected session %q", s.Analyst)
		}
	}
	// Malformed IDs → 400 before any session is touched.
	long := make([]byte, 200)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{string(long), "has space"} {
		if code, _ := askAs(t, hs.URL, bad, "sum", []int{0}); code != http.StatusBadRequest {
			t.Fatalf("bad analyst %q: status %d, want 400", bad, code)
		}
	}
	// Control characters can't even be sent as header values; check the
	// query-parameter path rejects them too.
	resp, out = postJSON(t, hs.URL+"/v1/queryset?analyst="+url.QueryEscape("ctrl\x01char"),
		QuerySetRequest{Kind: "sum", Indices: []int{0}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ctrl-char analyst: status %d %v, want 400", resp.StatusCode, out)
	}
	// Per-analyst stats.
	r, err := http.Get(hs.URL + "/v1/stats?analyst=alice")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Analyst != "alice" || st.Answered != 1 {
		t.Fatalf("alice stats: %+v", st)
	}
}

// TestSessionAdmission503: beyond -max-sessions, new analysts receive
// 503 with a Retry-After hint; existing ones keep working.
func TestSessionAdmission503(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3})
	sp := core.NewEngineSpec(ds)
	sp.Register(func() (audit.Auditor, error) { return sumfull.New(3), nil }, query.Sum)
	hs, _, _ := newSessionServer(t, sp, session.Config{MaxSessions: 2})

	if code, _ := askAs(t, hs.URL, "alice", "sum", []int{0}); code != http.StatusOK {
		t.Fatal("alice should be admitted")
	}
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/queryset", bytes.NewReader([]byte(`{"kind":"sum","indices":[0]}`)))
	req.Header.Set("X-Analyst-ID", "mallory")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity analyst: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}
	if code, _ := askAs(t, hs.URL, "alice", "sum", []int{1}); code != http.StatusOK {
		t.Fatal("admitted analyst must keep working")
	}
}

// TestLegacySingleModeRejectsAnalysts: the legacy New(sdb) constructor
// serves the default session only; named analysts get 403.
func TestLegacySingleModeRejectsAnalysts(t *testing.T) {
	srv, _ := newTestServer(t, 10)
	code, out := askAs(t, srv.URL, "alice", "sum", []int{0, 1})
	if code != http.StatusForbidden {
		t.Fatalf("analyst on single-mode server: %d %v, want 403", code, out)
	}
	if code, _ := askAs(t, srv.URL, "", "sum", []int{0, 1}); code != http.StatusOK {
		t.Fatal("default session must keep working")
	}
}

// TestReadyzGate: a readiness-gated server answers 503 on /readyz and
// session-scoped endpoints (healthz and metrics stay open) until
// MarkReady.
func TestReadyzGate(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3})
	sp := core.NewEngineSpec(ds)
	sp.Register(func() (audit.Auditor, error) { return sumfull.New(3), nil }, query.Sum)
	hs, srv, _ := newSessionServer(t, sp, session.Config{}, WithReadinessGate())

	get := func(path string) int {
		r, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz pre-ready: %d", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz must stay live: %d", got)
	}
	if got := get("/v1/metrics"); got != http.StatusOK {
		t.Fatalf("metrics must stay open: %d", got)
	}
	if code, _ := askAs(t, hs.URL, "alice", "sum", []int{0}); code != http.StatusServiceUnavailable {
		t.Fatalf("query pre-ready: %d, want 503", code)
	}
	if got := get("/v1/stats"); got != http.StatusServiceUnavailable {
		t.Fatalf("stats pre-ready: %d, want 503", got)
	}
	srv.MarkReady()
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz post-ready: %d", got)
	}
	if code, _ := askAs(t, hs.URL, "alice", "sum", []int{0}); code != http.StatusOK {
		t.Fatalf("query post-ready: %d", code)
	}
}

// TestSessionsEndpointAndMetrics: the admin view lists sessions, and
// /v1/metrics exports the sessions_* series.
func TestSessionsEndpointAndMetrics(t *testing.T) {
	ds := dataset.FromValues([]float64{1, 2, 3, 4})
	sp := core.NewEngineSpec(ds)
	sp.Register(func() (audit.Auditor, error) { return sumfull.New(4), nil }, query.Sum)
	reg := metrics.NewRegistry()
	cfg := session.Config{MaxLive: 2, Observer: metrics.NewSessionCollector(reg, 16)}
	hs, _, mgr := newSessionServer(t, sp, cfg, WithMetrics(reg))

	for i, who := range []string{"alice", "bob", "carol"} {
		if code, _ := askAs(t, hs.URL, who, "sum", []int{i}); code != http.StatusOK {
			t.Fatalf("%s: %d", who, code)
		}
	}
	mgr.EvictEngine("alice")
	if code, _ := askAs(t, hs.URL, "alice", "sum", []int{3}); code != http.StatusOK {
		t.Fatal("alice after evict")
	}

	r, err := http.Get(hs.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var sessions SessionsResponse
	if err := json.NewDecoder(r.Body).Decode(&sessions); err != nil {
		t.Fatal(err)
	}
	if len(sessions.Sessions) != 4 { // default + 3 analysts
		t.Fatalf("listed %d sessions: %+v", len(sessions.Sessions), sessions)
	}
	if sessions.Tracked != 4 {
		t.Fatalf("tracked=%d", sessions.Tracked)
	}

	r2, err := http.Get(hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var snap metrics.Snapshot
	if err := json.NewDecoder(r2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["sessions_created_total"] < 4 {
		t.Fatalf("sessions_created_total=%d", snap.Counters["sessions_created_total"])
	}
	if snap.Counters["sessions_replayed_total"] < 1 {
		t.Fatalf("sessions_replayed_total=%d", snap.Counters["sessions_replayed_total"])
	}
	if snap.Gauges["sessions_tracked"] != 4 {
		t.Fatalf("sessions_tracked=%d", snap.Gauges["sessions_tracked"])
	}
	if snap.Gauges["sessions_live"] < 1 {
		t.Fatalf("sessions_live=%d", snap.Gauges["sessions_live"])
	}
	if _, ok := snap.Histograms["session_replay_seconds"]; !ok {
		t.Fatal("session_replay_seconds histogram missing")
	}
}
