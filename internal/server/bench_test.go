package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/qindex"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/session"
)

// benchRows is the acceptance-scale table: resolution cost differences
// between the naive scan and the index only matter at real sizes.
const benchRows = 10_000

func benchDataset() *dataset.Dataset {
	return dataset.GenerateCompany(randx.New(42), dataset.DefaultCompanyConfig(benchRows))
}

// benchStatements is a hot mix over the company schema: range cuts,
// posting-list lookups, and a conjunction, repeated verbatim the way a
// dashboard or retry loop repeats them.
var benchStatements = []string{
	"SELECT sum(salary) WHERE age BETWEEN 30 AND 45",
	"SELECT sum(salary) WHERE dept = 'eng'",
	"SELECT sum(salary) WHERE zip = '94305' AND age >= 40",
	"SELECT sum(salary) WHERE age <= 35",
}

// BenchmarkResolve measures statement → query.Query resolution alone
// (parse + predicate → row set), the layer the index replaces.
//
//	naive    per-request full-table scan (pre-index behaviour)
//	indexed  shared qindex resolver (memoized statements, interned sets)
func BenchmarkResolve(b *testing.B) {
	ds := benchDataset()
	arms := []struct {
		name string
		res  *core.SQLResolver
	}{
		{"naive", core.NewSQLResolver(ds)},
		{"indexed", core.NewSQLResolver(qindex.NewResolver(ds, qindex.Options{}))},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q, err := arm.res.ResolveSQL("salary", benchStatements[i%len(benchStatements)])
				if err != nil || len(q.Set) == 0 {
					b.Fatalf("resolve: %v (|set|=%d)", err, len(q.Set))
				}
			}
		})
	}
}

// benchServer builds a sessionful server over the 10k-row table with the
// exact full-disclosure auditors, with or without the query index.
func benchServer(b *testing.B, disableIndex bool) *Server {
	b.Helper()
	spec := core.NewEngineSpec(benchDataset())
	spec.Register(func() (audit.Auditor, error) { return sumfull.New(benchRows), nil }, query.Sum)
	spec.Register(func() (audit.Auditor, error) { return maxminfull.New(benchRows), nil }, query.Max, query.Min)
	mgr, err := session.NewManager(spec, session.Config{NoJanitor: true})
	if err != nil {
		b.Fatal(err)
	}
	opts := Defaults()
	opts.DisableQueryIndex = disableIndex
	return NewWithSessions(mgr, "salary", WithOptions(opts))
}

// BenchmarkServeAsk measures the whole HTTP Ask path — routing, body
// decode, resolution, engine decision, response encode — for the hot
// repeated-statement shape. ServeHTTP is driven directly (no sockets) so
// the numbers isolate server work from kernel networking.
func BenchmarkServeAsk(b *testing.B) {
	for _, arm := range []struct {
		name    string
		disable bool
	}{
		{"naive", true},
		{"indexed", false},
	} {
		b.Run(arm.name, func(b *testing.B) {
			srv := benchServer(b, arm.disable)
			defer srv.Sessions().Close()
			bodies := make([]string, len(benchStatements))
			for i, sql := range benchStatements {
				bodies[i] = fmt.Sprintf("{\"sql\": %q}", sql)
			}
			// Warm each statement once so both arms measure steady state
			// (first-touch index build / auditor state setup excluded).
			for _, body := range bodies {
				serveAskOnce(b, srv, body)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				serveAskOnce(b, srv, bodies[i%len(bodies)])
			}
		})
	}
}

func serveAskOnce(b *testing.B, srv *Server, body string) {
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkServeAskQuerySet measures the explicit-queryset path (client-
// resolved indices), where interning is the only index-layer work.
func BenchmarkServeAskQuerySet(b *testing.B) {
	srv := benchServer(b, false)
	defer srv.Sessions().Close()
	idx := make([]string, 0, 2000)
	for i := 0; i < 2000; i++ {
		idx = append(idx, fmt.Sprint(i*3))
	}
	body := `{"kind": "sum", "indices": [` + strings.Join(idx, ",") + `]}`
	post := func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/queryset", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	post()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}
