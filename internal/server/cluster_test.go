package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"queryaudit/internal/cluster"
	"queryaudit/internal/session"
)

// testFleetDoc names two shards; the URLs are placeholders — the
// ownership gate and the migration endpoints never dial them (the
// Migrator is pointed at httptest servers directly).
const testFleetDoc = `{
	"seed": 11,
	"shards": [
		{"id": "shard-a", "primary": "http://127.0.0.1:9001"},
		{"id": "shard-b", "primary": "http://127.0.0.1:9003"}
	]
}`

func testFleet(t *testing.T) *cluster.Fleet {
	t.Helper()
	f, err := cluster.ParseFleet(strings.NewReader(testFleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func testView(t *testing.T, f *cluster.Fleet, shard string) *cluster.NodeView {
	t.Helper()
	v, err := cluster.NewNodeView(f, shard)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// analystOwnedBy scans for an analyst ID the given shard owns.
func analystOwnedBy(t *testing.T, f *cluster.Fleet, shard string) string {
	t.Helper()
	for _, name := range []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"} {
		sp, err := f.Owner(name)
		if err != nil {
			t.Fatal(err)
		}
		if sp.ID == shard {
			return name
		}
	}
	t.Fatalf("no test analyst hashes to shard %s", shard)
	return ""
}

// TestClusterOwnershipGate: a clustered node answers its own analysts
// normally and fences another shard's analysts with a 421 naming the
// owner — the hop a router or misconfigured client follows.
func TestClusterOwnershipGate(t *testing.T) {
	f := testFleet(t)
	hs, _, _ := newSessionServer(t, replSpec(8), session.Config{}, WithCluster(testView(t, f, "shard-a")))
	mine := analystOwnedBy(t, f, "shard-a")
	theirs := analystOwnedBy(t, f, "shard-b")

	if code, body := askAs(t, hs.URL, mine, "sum", []int{0, 1}); code != http.StatusOK {
		t.Fatalf("owned analyst %q: %d %v", mine, code, body)
	}
	code, body := askAs(t, hs.URL, theirs, "sum", []int{0, 1})
	if code != http.StatusMisdirectedRequest {
		t.Fatalf("foreign analyst %q: %d %v, want 421", theirs, code, body)
	}
	if body["shard"] != "shard-b" || body["primary_url"] != "http://127.0.0.1:9003" {
		t.Fatalf("421 body does not name the owner: %v", body)
	}

	// Every response from a clustered node carries its shard identity.
	resp, err := http.Get(hs.URL + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Shard-ID"); got != "shard-a" {
		t.Fatalf("X-Shard-ID = %q, want shard-a", got)
	}
}

// TestClusterNodeStatus: the per-node status row the router aggregates.
func TestClusterNodeStatus(t *testing.T) {
	f := testFleet(t)
	hs, _, _ := newSessionServer(t, replSpec(8), session.Config{}, WithCluster(testView(t, f, "shard-a")))
	resp, err := http.Get(hs.URL + "/v1/cluster/node")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cluster.NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shard != "shard-a" || st.Role != "primary" {
		t.Fatalf("node status = %+v", st)
	}
}

// TestClusterMigrationOverHTTP drives a real migration through the
// node endpoints with the same Migrator the router's rebalance uses,
// then verifies the handoff semantics: the source fences the analyst
// to the successor (even though the stale descriptor still names the
// source as owner), and a descriptor push clears the fence.
func TestClusterMigrationOverHTTP(t *testing.T) {
	f := testFleet(t)
	srcHS, _, srcMgr := newSessionServer(t, replSpec(8), session.Config{}, WithCluster(testView(t, f, "shard-a")))
	dstHS, _, dstMgr := newSessionServer(t, replSpec(8), session.Config{}, WithCluster(testView(t, f, "shard-b")))
	analyst := analystOwnedBy(t, f, "shard-a")

	for i := 0; i < 4; i++ {
		if code, body := askAs(t, srcHS.URL, analyst, "sum", []int{i % 8, (i + 1) % 8}); code != http.StatusOK {
			t.Fatalf("seed query %d: %d %v", i, code, body)
		}
	}
	wantSeq, _ := srcMgr.SeqOf(analyst)

	res, err := cluster.NewMigrator(nil, 3).Migrate(context.Background(), srcHS.URL, dstHS.URL, "shard-b", analyst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped || res.Seq != wantSeq {
		t.Fatalf("migration result %+v, want seq %d", res, wantSeq)
	}
	if _, ok := srcMgr.Export(analyst); ok {
		t.Fatal("source still holds the session")
	}
	if seq, ok := dstMgr.SeqOf(analyst); !ok || seq != wantSeq {
		t.Fatalf("target at (seq %d, %v), want %d", seq, ok, wantSeq)
	}

	// The source now fences the analyst to the successor shard: a query
	// racing the config push gets a 421 to shard-b instead of silently
	// starting a second timeline here.
	code, body := askAs(t, srcHS.URL, analyst, "sum", []int{0, 1})
	if code != http.StatusMisdirectedRequest || body["shard"] != "shard-b" {
		t.Fatalf("post-migration query on source: %d %v, want 421 to shard-b", code, body)
	}

	// A descriptor push clears the fence (this stale descriptor still
	// assigns the analyst here, so the query then lands as a fresh
	// session — exactly what a rebalance's second sweep re-migrates).
	cfg, _ := json.Marshal(cluster.ConfigRequest{Fleet: json.RawMessage(testFleetDoc)})
	resp, err := http.Post(srcHS.URL+"/v1/cluster/config", "application/json", strings.NewReader(string(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr cluster.ConfigResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || cr.Shard != "shard-a" || cr.Reloads != 1 {
		t.Fatalf("config push: %d %+v", resp.StatusCode, cr)
	}
	if code, _ := askAs(t, srcHS.URL, analyst, "sum", []int{0, 1}); code != http.StatusOK {
		t.Fatalf("post-reload query on source: %d, want 200 (fence cleared)", code)
	}
}

// TestClusterConfigRejectsDroppingSelf: a node must refuse a descriptor
// that removes its own shard — accepting it would leave the node unable
// to place any analyst, including the ones it still hosts.
func TestClusterConfigRejectsDroppingSelf(t *testing.T) {
	f := testFleet(t)
	hs, _, _ := newSessionServer(t, replSpec(8), session.Config{}, WithCluster(testView(t, f, "shard-b")))
	only := `{"shards": [{"id": "shard-a", "primary": "http://127.0.0.1:9001"}]}`
	cfg, _ := json.Marshal(cluster.ConfigRequest{Fleet: json.RawMessage(only)})
	resp, err := http.Post(hs.URL+"/v1/cluster/config", "application/json", strings.NewReader(string(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
}

// TestClusterJournalEndpointErrors: missing analyst param and unknown
// analyst are client errors, not empty journals.
func TestClusterJournalEndpointErrors(t *testing.T) {
	f := testFleet(t)
	hs, _, _ := newSessionServer(t, replSpec(8), session.Config{}, WithCluster(testView(t, f, "shard-a")))
	resp, err := http.Get(hs.URL + "/v1/cluster/journal")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no analyst param: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/v1/cluster/journal?analyst=nobody")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown analyst: %d, want 404", resp.StatusCode)
	}
}
