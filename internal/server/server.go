// Package server exposes an audited statistical database over HTTP with
// a small JSON API — the deployment shape the paper's introduction
// implies (a census-bureau-style service answering aggregate statistics
// while refusing privacy-compromising combinations).
//
//	POST /v1/query    {"sql": "SELECT sum(salary) WHERE age >= 40"}
//	POST /v1/queryset {"kind": "max", "indices": [0, 3, 7]}
//	POST /v1/update   {"index": 3, "value": 81000}
//	GET  /v1/stats
//	GET  /v1/schema
//
// Denials are HTTP 200 with {"denied": true} — a denial is a normal
// protocol outcome, not a transport error. Malformed requests are 400;
// unsupported aggregates are 422.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"queryaudit/internal/audit"
	"queryaudit/internal/core"
	"queryaudit/internal/query"
)

// Server wraps an SDB with HTTP handlers. The engine's own mutex makes
// concurrent requests safe.
type Server struct {
	sdb *core.SDB
	mux *http.ServeMux
}

// New builds a server over an SDB.
func New(sdb *core.SDB) *Server {
	s := &Server{sdb: sdb, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/queryset", s.handleQuerySet)
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/schema", s.handleSchema)
	s.mux.HandleFunc("GET /v1/knowledge", s.handleKnowledge)
	s.mux.HandleFunc("POST /v1/prime", s.handlePrime)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	SQL string `json:"sql"`
}

// QuerySetRequest is the body of POST /v1/queryset: an explicit query
// set, for clients that resolve predicates themselves.
type QuerySetRequest struct {
	Kind    string `json:"kind"`
	Indices []int  `json:"indices"`
}

// QueryResponse is the body of query responses.
type QueryResponse struct {
	Denied bool    `json:"denied"`
	Answer float64 `json:"answer,omitempty"`
}

// UpdateRequest is the body of POST /v1/update.
type UpdateRequest struct {
	Index int     `json:"index"`
	Value float64 `json:"value"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Answered      int `json:"answered"`
	Denied        int `json:"denied"`
	Records       int `json:"records"`
	Modifications int `json:"modifications"`
}

// errorResponse carries machine-readable failures.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"sql\": \"SELECT ...\"}"})
		return
	}
	resp, err := s.sdb.Query(req.SQL)
	s.writeQueryResult(w, resp, err)
}

func (s *Server) handleQuerySet(w http.ResponseWriter, r *http.Request) {
	var req QuerySetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"kind\": ..., \"indices\": [...]}"})
		return
	}
	kind, err := query.ParseKind(req.Kind)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp, err := s.sdb.Engine().Ask(query.New(kind, req.Indices...))
	s.writeQueryResult(w, resp, err)
}

func (s *Server) writeQueryResult(w http.ResponseWriter, resp core.Response, err error) {
	switch {
	case errors.Is(err, core.ErrNoAuditor) || errors.Is(err, audit.ErrUnsupportedKind):
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case resp.Denied:
		writeJSON(w, http.StatusOK, QueryResponse{Denied: true})
	default:
		writeJSON(w, http.StatusOK, QueryResponse{Answer: resp.Answer})
	}
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"index\": i, \"value\": v}"})
		return
	}
	if err := s.sdb.Engine().Update(req.Index, req.Value); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	eng := s.sdb.Engine()
	writeJSON(w, http.StatusOK, StatsResponse{
		Answered:      eng.Answered(),
		Denied:        eng.Denied(),
		Records:       eng.Dataset().N(),
		Modifications: eng.Dataset().Modifications(),
	})
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	ds := s.sdb.Engine().Dataset()
	type attr struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	var attrs []attr
	for _, a := range ds.Schema() {
		k := "numeric"
		if a.Kind != 0 {
			k = "categorical"
		}
		attrs = append(attrs, attr{Name: a.Name, Kind: k})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"records":    ds.N(),
		"attributes": attrs,
	})
}

// PrimeRequest is the body of POST /v1/prime: "important" queries to
// answer up front so they stay answerable forever (the paper's Section 7
// remedy). Priming fails atomically per query; a denial mid-list leaves
// earlier primes committed and reports the offender.
type PrimeRequest struct {
	Queries []QuerySetRequest `json:"queries"`
}

func (s *Server) handlePrime(w http.ResponseWriter, r *http.Request) {
	var req PrimeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"queries\": [{\"kind\":...,\"indices\":[...]}, ...]}"})
		return
	}
	var qs []query.Query
	for _, q := range req.Queries {
		kind, err := query.ParseKind(q.Kind)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		qs = append(qs, query.New(kind, q.Indices...))
	}
	if err := s.sdb.Engine().Prime(qs); err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "primed": len(qs)})
}

// KnowledgeResponse is the body of GET /v1/knowledge: what the answered
// history exposes about each record, per reporting auditor.
type KnowledgeResponse struct {
	Auditors map[string][]audit.ElementKnowledge `json:"auditors"`
}

func (s *Server) handleKnowledge(w http.ResponseWriter, _ *http.Request) {
	eng := s.sdb.Engine()
	out := KnowledgeResponse{Auditors: map[string][]audit.ElementKnowledge{}}
	for _, k := range []query.Kind{query.Sum, query.Max, query.Min} {
		a, ok := eng.Auditor(k)
		if !ok {
			continue
		}
		kr, ok := a.(audit.KnowledgeReporter)
		if !ok {
			continue
		}
		if _, seen := out.Auditors[a.Name()]; seen {
			continue // one auditor may serve several kinds
		}
		out.Auditors[a.Name()] = sanitizeKnowledge(kr.Knowledge())
	}
	writeJSON(w, http.StatusOK, out)
}

// sanitizeKnowledge replaces ±Inf bounds (not expressible in JSON) with
// omitted extremes encoded as NaN-free sentinels: the bound fields keep
// their values only when finite; infinite bounds become ±MaxFloat64.
func sanitizeKnowledge(ks []audit.ElementKnowledge) []audit.ElementKnowledge {
	const huge = 1.797693134862315e+308
	out := append([]audit.ElementKnowledge(nil), ks...)
	for i := range out {
		if out[i].Lower < -huge || out[i].Lower != out[i].Lower {
			out[i].Lower = -huge
		}
		if out[i].Upper > huge || out[i].Upper != out[i].Upper {
			out[i].Upper = huge
		}
	}
	return out
}

// ListenAndServe runs the server on addr (blocking).
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s}
	fmt.Printf("auditserver listening on %s\n", addr)
	return srv.ListenAndServe()
}
