// Package server exposes an audited statistical database over HTTP with
// a small JSON API — the deployment shape the paper's introduction
// implies (a census-bureau-style service answering aggregate statistics
// while refusing privacy-compromising combinations).
//
//	POST /v1/query    {"sql": "SELECT sum(salary) WHERE age >= 40"}
//	POST /v1/queryset {"kind": "max", "indices": [0, 3, 7]}
//	POST /v1/update   {"index": 3, "value": 81000}
//	POST /v1/prime    {"queries": [{"kind": "sum", "indices": [...]}]}
//	GET  /v1/stats
//	GET  /v1/schema
//	GET  /v1/knowledge
//	GET  /v1/sessions
//	GET  /v1/metrics
//	GET  /healthz
//	GET  /readyz
//
// Denials are HTTP 200 with {"denied": true} — a denial is a normal
// protocol outcome, not a transport error. Malformed requests are 400;
// unsupported aggregates are 422; oversized bodies or index lists are
// 413; a throttled client is 429; a refused session admission is 503
// with Retry-After.
//
// # Analyst identity
//
// The paper's compromise definitions are per-adversary: each analyst's
// history is what can breach privacy, so the server keys audit state by
// analyst. Requests name their analyst with the X-Analyst-ID header (or
// the ?analyst= query parameter); requests carrying neither run in the
// shared "default" session, which keeps single-analyst clients working
// unchanged. Every session-scoped endpoint (query, queryset, prime,
// stats, knowledge) honors the identity; /v1/update mutates the shared
// dataset and is visible to every session.
//
// # Production hygiene
//
// Every POST body is capped by http.MaxBytesReader (Options.MaxBodyBytes,
// default 1 MiB), and /v1/queryset and /v1/prime additionally bound the
// number of indices / queries they accept (Options.MaxIndices,
// Options.MaxPrimeQueries), so a single request cannot hold an engine
// lock arbitrarily long. Run (and ListenAndServe) install read/write/
// idle timeouts on the http.Server and drain in-flight requests on
// context cancellation. All handlers run behind middleware that records
// per-route counters and latency histograms into a metrics.Registry
// (exported at GET /v1/metrics) and, when Options.AccessLog is set,
// writes one structured line per request. An optional per-client
// concurrency limiter (Options.PerClientConcurrency) bounds how many
// requests one client may have in flight.
//
// Concurrency correctness is delegated to the session manager's locking
// discipline (dataset lock → shard lock → session lock) and, below it,
// core.Engine's: handlers only touch audit state through the manager's
// locked methods and never reach around it to an engine or auditor.
//
// # Readiness
//
// GET /healthz is pure liveness: the process is up and the mux serves.
// GET /readyz additionally reflects boot-time state restoration: a
// server constructed with WithReadinessGate answers 503 on /readyz and
// on every session-scoped endpoint until MarkReady is called (after
// snapshot and session-log replay finish), so a load balancer never
// routes an analyst to a server that has not finished reconstructing
// audit state — answering before replay completes would let an attacker
// rerun complementary queries against an amnesiac auditor.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"queryaudit/internal/audit"
	"queryaudit/internal/cluster"
	"queryaudit/internal/core"
	"queryaudit/internal/metrics"
	"queryaudit/internal/qindex"
	"queryaudit/internal/query"
	"queryaudit/internal/replica"
	"queryaudit/internal/session"
)

// retryAfterSeconds is the Retry-After hint attached to 503 responses
// (session admission refused, or server not yet ready).
const retryAfterSeconds = 10

// maxAnalystIDLen bounds the analyst identity accepted from headers.
const maxAnalystIDLen = 128

// Server routes HTTP requests to per-analyst audit sessions. All
// concurrency safety is delegated to the session.Manager.
type Server struct {
	mgr       *session.Manager
	sensitive string
	// sqlRes resolves /v1/query statements: by default the deployment's
	// shared indexed resolver (memoized statements, interned sets); the
	// naive per-request scan when Options.DisableQueryIndex is set.
	sqlRes  *core.SQLResolver
	mux     *http.ServeMux
	handler http.Handler // mux behind the middleware chain
	opts    Options
	reg     *metrics.Registry
	httpM   *httpMetrics
	limiter *clientLimiter
	// repl, when set, makes role and quarantine part of request routing:
	// writes are fenced to the primary, divergent sessions answer 503.
	repl *replica.Node
	// cview, when set, makes shard ownership part of request routing:
	// analysts owned by another shard answer 421 naming the owner.
	cview    *cluster.NodeView
	clusterM *metrics.ClusterNodeMetrics
	// ready gates the session-scoped endpoints; it starts true unless
	// WithReadinessGate is given, and flips once via MarkReady.
	ready atomic.Bool
	gated bool
}

// New builds a single-analyst server over a pre-built SDB — the legacy
// constructor, kept for deployments that wire one engine by hand (e.g.
// restoring a persisted auditor that no factory can rebuild). Requests
// carrying a non-default analyst identity fail with 403: multi-analyst
// serving requires NewWithSessions. The engine is instrumented with a
// metrics.EngineCollector unless Options disable it; instrumentation is
// installed here, before the handler is exposed, so no request can race
// an observer swap.
func New(sdb *core.SDB, opts ...Option) *Server {
	s := newServer(session.Single(sdb.Engine(), session.Config{}), sdb.Sensitive(), opts)
	if s.opts.InstrumentEngine {
		sdb.Engine().SetObserver(metrics.NewEngineCollector(s.reg))
	}
	if s.opts.InstrumentMC {
		sdb.Engine().SetMCObserver(metrics.NewMCCollector(s.reg))
	}
	if s.opts.MCWorkers != 0 {
		sdb.Engine().SetMCWorkers(s.opts.MCWorkers)
	}
	if s.opts.MCScheduler != nil {
		sdb.Engine().SetMCScheduler(s.opts.MCScheduler)
	}
	return s
}

// NewWithSessions builds a multi-analyst server over a session manager.
// Engine observers are NOT installed here: session engines are built on
// demand, so observers must come from the manager's core.EngineSpec
// (spec.SetObserver / SetMCObserver / SetMCWorkers / SetMCScheduler),
// which installs them at construction time — before the engine serves a
// single query — rather than racing a SetObserver call against in-flight
// requests. Options.InstrumentEngine / InstrumentMC / MCWorkers /
// MCScheduler are ignored.
func NewWithSessions(mgr *session.Manager, sensitive string, opts ...Option) *Server {
	return newServer(mgr, sensitive, opts)
}

func newServer(mgr *session.Manager, sensitive string, opts []Option) *Server {
	s := &Server{mgr: mgr, sensitive: sensitive, mux: http.NewServeMux(), opts: Defaults()}
	for _, o := range opts {
		o(s)
	}
	s.ready.Store(!s.gated)
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	s.httpM = newHTTPMetrics(s.reg)
	if s.opts.PerClientConcurrency > 0 {
		s.limiter = newClientLimiter(s.opts.PerClientConcurrency)
	}
	switch {
	case s.opts.DisableQueryIndex:
		s.sqlRes = core.NewSQLResolver(mgr.Dataset())
	case s.opts.QueryCacheEntries != 0:
		// A server-owned resolver with caller-sized memos (the shared
		// interner bound keeps its default — canonical sets are tiny).
		qr := qindex.NewResolver(mgr.Dataset(), qindex.Options{
			PredEntries: s.opts.QueryCacheEntries,
			SQLEntries:  s.opts.QueryCacheEntries,
		})
		qr.SetObserver(metrics.NewQIndexCollector(s.reg))
		s.sqlRes = core.NewSQLResolver(qr)
	default:
		qr := mgr.Resolver()
		qr.SetObserver(metrics.NewQIndexCollector(s.reg))
		s.sqlRes = core.NewSQLResolver(qr)
	}
	s.mux.HandleFunc("POST /v1/query", s.whenReady(s.writable(s.handleQuery)))
	s.mux.HandleFunc("POST /v1/queryset", s.whenReady(s.writable(s.handleQuerySet)))
	s.mux.HandleFunc("POST /v1/update", s.whenReady(s.writable(s.handleUpdate)))
	s.mux.HandleFunc("GET /v1/stats", s.whenReady(s.handleStats))
	s.mux.HandleFunc("GET /v1/journal", s.whenReady(s.handleJournal))
	s.mux.HandleFunc("GET /v1/schema", s.handleSchema)
	s.mux.HandleFunc("GET /v1/knowledge", s.whenReady(s.handleKnowledge))
	s.mux.HandleFunc("POST /v1/prime", s.whenReady(s.writable(s.handlePrime)))
	s.mux.HandleFunc("GET /v1/sessions", s.whenReady(s.handleSessions))
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.repl != nil {
		s.mux.Handle("/v1/replication/", s.repl.Handler())
	}
	if s.cview != nil {
		s.clusterRoutes()
	}
	s.handler = s.middleware(s.mux)
	return s
}

// writable wraps a state-mutating handler with the replication role
// gate: on a node that is not the cluster primary the request is
// misdirected (421) and the response names the primary, so a client (or
// proxy) can follow. Non-replicated servers pass through untouched.
//
// The gate exists because a replica answering a query would FORK the
// audit timeline: its auditor would commit a decision the primary never
// journaled, and every digest after that point would diverge. Reads
// (stats, knowledge, sessions) stay open — serving them from replayed
// state is the whole point of a read replica.
func (s *Server) writable(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.repl != nil && !s.repl.Writable() {
			resp := replicaErrorResponse{
				Error:      "this node is a read-only replica; direct writes to the primary",
				Role:       s.repl.Role().String(),
				Epoch:      s.repl.Epoch(),
				PrimaryURL: s.repl.PrimaryURL(),
			}
			if s.cview != nil {
				// Clustered nodes name their shard so a proxy can tell this
				// role redirect (same shard, wrong member) from an ownership
				// redirect to a different shard.
				resp.Shard = s.cview.ShardID()
			}
			s.writeJSON(w, http.StatusMisdirectedRequest, resp)
			return
		}
		h(w, r)
	}
}

// Metrics returns the registry the server records into.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Sessions returns the session manager the server routes through.
func (s *Server) Sessions() *session.Manager { return s.mgr }

// Resolver returns the SQL resolution front-end /v1/query routes
// through (indexed by default; the naive scan under DisableQueryIndex).
func (s *Server) Resolver() *core.SQLResolver { return s.sqlRes }

// MarkReady opens the session-scoped endpoints on a readiness-gated
// server. Call it once boot-time state restoration (auditor snapshot,
// session-log replay) has finished.
func (s *Server) MarkReady() { s.ready.Store(true) }

// whenReady wraps a session-scoped handler with the readiness gate.
func (s *Server) whenReady(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is restoring audit state"})
			return
		}
		h(w, r)
	}
}

// ServeHTTP implements http.Handler (middleware included).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// analystID extracts the analyst identity: X-Analyst-ID header first,
// then the ?analyst= query parameter, else the shared default session.
// IDs are capped at 128 bytes of printable ASCII so arbitrary header
// bytes never become map keys or log lines.
func analystID(r *http.Request) (string, error) {
	a := r.Header.Get("X-Analyst-ID")
	if a == "" {
		a = r.URL.Query().Get("analyst")
	}
	if a == "" {
		return session.DefaultAnalyst, nil
	}
	if len(a) > maxAnalystIDLen {
		return "", errors.New("analyst id longer than " + strconv.Itoa(maxAnalystIDLen) + " bytes")
	}
	for i := 0; i < len(a); i++ {
		if a[i] < 0x21 || a[i] > 0x7e {
			return "", errors.New("analyst id must be printable ASCII without spaces")
		}
	}
	return a, nil
}

// analyst resolves the request identity, writing the 400 itself on a
// malformed ID; ok reports whether the handler should proceed. On a
// replicated node a quarantined session (replication divergence was
// detected for it) answers 503: its replayed state provably differs from
// the primary's, so any answer would come from a forged timeline.
func (s *Server) analyst(w http.ResponseWriter, r *http.Request) (string, bool) {
	a, err := analystID(r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return "", false
	}
	if !s.ownershipGate(w, a) {
		return "", false
	}
	if s.repl != nil {
		if reason, bad := s.repl.Quarantined(a); bad {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{
				Error: "session quarantined after replication divergence: " + reason})
			return "", false
		}
	}
	return a, true
}

// writeSessionErr maps session-layer failures; reports whether err was
// one.
func (s *Server) writeSessionErr(w http.ResponseWriter, err error) bool {
	switch {
	case errors.Is(err, session.ErrTooManySessions):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return true
	case errors.Is(err, session.ErrMultiAnalystDisabled):
		s.writeJSON(w, http.StatusForbidden, errorResponse{Error: err.Error()})
		return true
	}
	return false
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	SQL string `json:"sql"`
}

// QuerySetRequest is the body of POST /v1/queryset: an explicit query
// set, for clients that resolve predicates themselves.
type QuerySetRequest struct {
	Kind    string `json:"kind"`
	Indices []int  `json:"indices"`
}

// QueryResponse is the body of query responses. Answer is a pointer so
// a legitimate answer of exactly 0 is serialized as {"denied":false,
// "answer":0} rather than silently omitted; on denials the field is
// absent.
type QueryResponse struct {
	Denied bool     `json:"denied"`
	Answer *float64 `json:"answer,omitempty"`
}

// UpdateRequest is the body of POST /v1/update.
type UpdateRequest struct {
	Index int     `json:"index"`
	Value float64 `json:"value"`
}

// StatsResponse is the body of GET /v1/stats, scoped to the requesting
// analyst's session. Answered+denied come from the session journal's
// running tallies in one lock acquisition, never a torn snapshot.
type StatsResponse struct {
	Analyst       string `json:"analyst"`
	Answered      int    `json:"answered"`
	Denied        int    `json:"denied"`
	Records       int    `json:"records"`
	Modifications int    `json:"modifications"`
	Live          bool   `json:"live"`
	LogEvents     int    `json:"log_events"`
}

// errorResponse carries machine-readable failures.
type errorResponse struct {
	Error string `json:"error"`
}

// replicaErrorResponse carries a role-aware refusal (421) with enough
// context for the caller to find the primary. Shard is set on clustered
// nodes (see cluster.MisdirectedBody for the ownership-redirect form).
type replicaErrorResponse struct {
	Error      string `json:"error"`
	Role       string `json:"role"`
	Epoch      uint64 `json:"epoch"`
	Shard      string `json:"shard,omitempty"`
	PrimaryURL string `json:"primary_url,omitempty"`
}

// encodeBufs pools response-encoding buffers for the hot Ask/batch path:
// a query answer is a few dozen bytes, so reusing buffers removes the
// per-response bytes.Buffer and encoder-state allocations.
var encodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledEncodeBuf keeps one oversized response (a knowledge snapshot,
// a full session listing) from pinning a large buffer in the pool.
const maxPooledEncodeBuf = 64 << 10

// writeJSON encodes v into a pooled buffer BEFORE writing the status
// line, so an encode failure (a NaN that reached a float field, a
// marshaler error) surfaces as a logged, counted 500 instead of a torn
// 200 body. Client-side write failures (peer gone mid-response) remain
// ignored — they are the client's disconnect, not a server fault.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encodeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	err := json.NewEncoder(buf).Encode(v)
	if err != nil {
		s.httpM.encodeFail.Inc()
		s.logf("response encode failed: status=%d type=%T err=%v", status, v, err)
		encodeBufs.Put(buf)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"internal error encoding response"}` + "\n")) //auditlint:allow errsink client disconnect on the error path; the failure is already counted and logged
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes()) //auditlint:allow errsink client disconnect mid-response is the peer's failure; Content-Length lets it detect the truncation
	if buf.Cap() <= maxPooledEncodeBuf {
		encodeBufs.Put(buf)
	}
}

// logf writes one server-fault line to the access logger when one is
// configured, else the process logger — encode failures must not be
// silent just because access logging is off.
func (s *Server) logf(format string, args ...any) {
	if s.opts.AccessLog != nil {
		s.opts.AccessLog.Printf(format, args...)
		return
	}
	log.Printf("server: "+format, args...)
}

// decodeBody decodes a JSON body capped at MaxBodyBytes. It reports
// oversized bodies distinctly so the caller can 413 instead of 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) (ok, tooLarge bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true, false
	}
	var mbe *http.MaxBytesError
	return false, errors.As(err, &mbe)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	analyst, ok := s.analyst(w, r)
	if !ok {
		return
	}
	var req QueryRequest
	ok, tooLarge := s.decodeBody(w, r, &req)
	if tooLarge {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body too large"})
		return
	}
	if !ok || req.SQL == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"sql\": \"SELECT ...\"}"})
		return
	}
	// Resolve once through the shared resolver, then route the interned
	// set to the analyst's engine: statement parsing and predicate
	// resolution are paid per unique statement, not per request.
	q, err := s.sqlRes.ResolveSQL(s.sensitive, req.SQL)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp, err := s.mgr.Ask(analyst, q)
	s.writeQueryResult(w, resp, err)
}

func (s *Server) handleQuerySet(w http.ResponseWriter, r *http.Request) {
	analyst, ok := s.analyst(w, r)
	if !ok {
		return
	}
	var req QuerySetRequest
	ok, tooLarge := s.decodeBody(w, r, &req)
	if tooLarge {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body too large"})
		return
	}
	if !ok {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"kind\": ..., \"indices\": [...]}"})
		return
	}
	if len(req.Indices) > s.opts.MaxIndices {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: "too many indices (limit " + strconv.Itoa(s.opts.MaxIndices) + ")"})
		return
	}
	kind, err := query.ParseKind(req.Kind)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// Interning the explicit set means a client that resolves predicates
	// itself still shares canonical sets with the SQL path (and with
	// every other session asking about the same rows).
	q := query.New(kind, req.Indices...)
	q.Set = s.sqlRes.Intern(q.Set)
	resp, err := s.mgr.Ask(analyst, q)
	s.writeQueryResult(w, resp, err)
}

func (s *Server) writeQueryResult(w http.ResponseWriter, resp core.Response, err error) {
	switch {
	case err != nil && s.writeSessionErr(w, err):
	case errors.Is(err, core.ErrNoAuditor) || errors.Is(err, audit.ErrUnsupportedKind):
		s.writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
	case err != nil:
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case resp.Denied:
		s.writeJSON(w, http.StatusOK, QueryResponse{Denied: true})
	default:
		ans := resp.Answer
		s.writeJSON(w, http.StatusOK, QueryResponse{Answer: &ans})
	}
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	ok, tooLarge := s.decodeBody(w, r, &req)
	if tooLarge {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body too large"})
		return
	}
	if !ok {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"index\": i, \"value\": v}"})
		return
	}
	if err := s.mgr.Update(req.Index, req.Value); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	analyst, ok := s.analyst(w, r)
	if !ok {
		return
	}
	st := s.mgr.Stats(analyst)
	s.writeJSON(w, http.StatusOK, StatsResponse{
		Analyst:       st.Analyst,
		Answered:      st.Answered,
		Denied:        st.Denied,
		Records:       st.Records,
		Modifications: st.Modifications,
		Live:          st.Live,
		LogEvents:     st.LogEvents,
	})
}

// handleJournal exports the requesting analyst's session journal — the
// same digest-chained session.LogSnapshot the cluster migration
// endpoint ships, but reachable on every deployment (GET
// /v1/cluster/journal mounts only with -cluster-config), so the
// retrospective pipeline (cmd/auditreport) can ingest from any live
// server. The snapshot is self-verifying: auditreport recomputes the
// digest chain before replaying a single event.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	analyst, ok := s.analyst(w, r)
	if !ok {
		return
	}
	snap, ok := s.mgr.Export(analyst)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "no session for analyst " + analyst})
		return
	}
	if snap.Events == nil {
		// A journal is a JSON array of events even when empty; null would
		// make the export indistinguishable from a non-journal document.
		snap.Events = []session.EventSnapshot{}
	}
	s.writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	ds := s.mgr.Dataset()
	type attr struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	var attrs []attr
	for _, a := range ds.Schema() {
		k := "numeric"
		if a.Kind != 0 {
			k = "categorical"
		}
		attrs = append(attrs, attr{Name: a.Name, Kind: k})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"records":    ds.N(),
		"attributes": attrs,
	})
}

// PrimeRequest is the body of POST /v1/prime: "important" queries to
// answer up front so they stay answerable forever (the paper's Section 7
// remedy). The whole list runs under one engine lock acquisition, so
// user queries cannot interleave mid-prime; a denial mid-list leaves
// earlier primes committed and reports the offender with 409.
type PrimeRequest struct {
	Queries []QuerySetRequest `json:"queries"`
}

func (s *Server) handlePrime(w http.ResponseWriter, r *http.Request) {
	analyst, ok := s.analyst(w, r)
	if !ok {
		return
	}
	var req PrimeRequest
	ok, tooLarge := s.decodeBody(w, r, &req)
	if tooLarge {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body too large"})
		return
	}
	if !ok || len(req.Queries) == 0 {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"queries\": [{\"kind\":...,\"indices\":[...]}, ...]}"})
		return
	}
	if len(req.Queries) > s.opts.MaxPrimeQueries {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: "too many prime queries (limit " + strconv.Itoa(s.opts.MaxPrimeQueries) + ")"})
		return
	}
	var qs []query.Query
	for _, q := range req.Queries {
		if len(q.Indices) > s.opts.MaxIndices {
			s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: "too many indices (limit " + strconv.Itoa(s.opts.MaxIndices) + ")"})
			return
		}
		kind, err := query.ParseKind(q.Kind)
		if err != nil {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		pq := query.New(kind, q.Indices...)
		pq.Set = s.sqlRes.Intern(pq.Set)
		qs = append(qs, pq)
	}
	if err := s.mgr.Prime(analyst, qs); err != nil {
		if s.writeSessionErr(w, err) {
			return
		}
		s.writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"ok": true, "primed": len(qs)})
}

// KnowledgeResponse is the body of GET /v1/knowledge: what the
// requesting analyst's answered history exposes about each record, per
// reporting auditor.
type KnowledgeResponse struct {
	Analyst  string                              `json:"analyst"`
	Auditors map[string][]audit.ElementKnowledge `json:"auditors"`
}

func (s *Server) handleKnowledge(w http.ResponseWriter, r *http.Request) {
	analyst, ok := s.analyst(w, r)
	if !ok {
		return
	}
	snap, err := s.mgr.Knowledge(analyst)
	if err != nil {
		if s.writeSessionErr(w, err) {
			return
		}
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	out := KnowledgeResponse{Analyst: analyst, Auditors: make(map[string][]audit.ElementKnowledge, len(snap))}
	for name, ks := range snap {
		out.Auditors[name] = sanitizeKnowledge(ks)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// SessionsResponse is the body of GET /v1/sessions: the admin view of
// every tracked session.
type SessionsResponse struct {
	Sessions []session.Info `json:"sessions"`
	Live     int            `json:"live"`
	Tracked  int            `json:"tracked"`
}

func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, SessionsResponse{
		Sessions: s.mgr.Sessions(),
		Live:     s.mgr.Live(),
		Tracked:  s.mgr.Tracked(),
	})
}

// handleHealthz is a liveness probe: the process is up and the mux is
// serving. It deliberately avoids every lock so a long-running decide
// cannot fail the probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 only once boot-time state
// restoration has finished (see the package comment). Liveness and
// readiness are deliberately distinct endpoints so an orchestrator can
// keep a slow-restoring process alive while routing no traffic to it.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "restoring"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleMetrics exports the registry: HTTP counters/latency per route,
// engine decision counters per aggregate kind, session lifecycle
// counters and gauges, replication series, and the decide/replay latency
// histograms. JSON by default; an Accept header naming text/plain (what
// a Prometheus scrape sends) selects the text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if acceptsPromText(r.Header.Get("Accept")) {
		// Render to a buffer first: a mid-render failure must be a clean
		// 500, not a torn 200 the scraper ingests as a partial snapshot,
		// and the Content-Length lets the scraper detect truncation.
		var buf bytes.Buffer
		if err := metrics.WritePrometheus(&buf, s.reg.Snapshot()); err != nil {
			s.logf("metrics render failed: %v", err)
			http.Error(w, "metrics render failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", metrics.PrometheusContentType)
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf.Bytes()) //auditlint:allow errsink a failed scrape write is the scraper's disconnect; nothing durable depends on it
		return
	}
	s.writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// acceptsPromText reports whether the Accept header asks for the
// Prometheus text format: any text/plain or openmetrics media range,
// unless application/json appears first. An absent or wildcard header
// keeps the JSON default, so browsers and curl stay human-readable.
func acceptsPromText(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "application/json":
			return false
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// sanitizeKnowledge replaces ±Inf bounds (not expressible in JSON) with
// omitted extremes encoded as NaN-free sentinels: the bound fields keep
// their values only when finite; infinite bounds become ±MaxFloat64.
func sanitizeKnowledge(ks []audit.ElementKnowledge) []audit.ElementKnowledge {
	const huge = 1.797693134862315e+308
	out := append([]audit.ElementKnowledge(nil), ks...)
	for i := range out {
		if out[i].Lower < -huge || out[i].Lower != out[i].Lower {
			out[i].Lower = -huge
		}
		if out[i].Upper > huge || out[i].Upper != out[i].Upper {
			out[i].Upper = huge
		}
	}
	return out
}
