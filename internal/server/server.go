// Package server exposes an audited statistical database over HTTP with
// a small JSON API — the deployment shape the paper's introduction
// implies (a census-bureau-style service answering aggregate statistics
// while refusing privacy-compromising combinations).
//
//	POST /v1/query    {"sql": "SELECT sum(salary) WHERE age >= 40"}
//	POST /v1/queryset {"kind": "max", "indices": [0, 3, 7]}
//	POST /v1/update   {"index": 3, "value": 81000}
//	POST /v1/prime    {"queries": [{"kind": "sum", "indices": [...]}]}
//	GET  /v1/stats
//	GET  /v1/schema
//	GET  /v1/knowledge
//	GET  /v1/metrics
//	GET  /healthz
//
// Denials are HTTP 200 with {"denied": true} — a denial is a normal
// protocol outcome, not a transport error. Malformed requests are 400;
// unsupported aggregates are 422; oversized bodies or index lists are
// 413; a throttled client is 429.
//
// # Production hygiene
//
// Every POST body is capped by http.MaxBytesReader (Options.MaxBodyBytes,
// default 1 MiB), and /v1/queryset and /v1/prime additionally bound the
// number of indices / queries they accept (Options.MaxIndices,
// Options.MaxPrimeQueries), so a single request cannot hold the engine
// lock arbitrarily long. Run (and ListenAndServe) install read/write/
// idle timeouts on the http.Server and drain in-flight requests on
// context cancellation. All handlers run behind middleware that records
// per-route counters and latency histograms into a metrics.Registry
// (exported at GET /v1/metrics) and, when Options.AccessLog is set,
// writes one structured line per request. An optional per-client
// concurrency limiter (Options.PerClientConcurrency) bounds how many
// requests one client may have in flight.
//
// Concurrency correctness is delegated to core.Engine's locking
// discipline: handlers only touch engine state through locked methods
// (Ask, Update, Prime, Stats, KnowledgeSnapshot) and never reach around
// the engine to an auditor.
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"queryaudit/internal/audit"
	"queryaudit/internal/core"
	"queryaudit/internal/metrics"
	"queryaudit/internal/query"
)

// Server wraps an SDB with HTTP handlers. The engine's own mutex makes
// concurrent requests safe.
type Server struct {
	sdb     *core.SDB
	mux     *http.ServeMux
	handler http.Handler // mux behind the middleware chain
	opts    Options
	reg     *metrics.Registry
	httpM   *httpMetrics
	limiter *clientLimiter
}

// New builds a server over an SDB. With no options it uses Defaults()
// and an internal metrics registry; pass WithOptions / WithMetrics to
// customize. The engine is instrumented with a metrics.EngineCollector
// unless it already has an observer installed by the caller.
func New(sdb *core.SDB, opts ...Option) *Server {
	s := &Server{sdb: sdb, mux: http.NewServeMux(), opts: Defaults()}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	if s.opts.InstrumentEngine {
		sdb.Engine().SetObserver(metrics.NewEngineCollector(s.reg))
	}
	if s.opts.InstrumentMC {
		sdb.Engine().SetMCObserver(metrics.NewMCCollector(s.reg))
	}
	if s.opts.MCWorkers != 0 {
		sdb.Engine().SetMCWorkers(s.opts.MCWorkers)
	}
	s.httpM = newHTTPMetrics(s.reg)
	if s.opts.PerClientConcurrency > 0 {
		s.limiter = newClientLimiter(s.opts.PerClientConcurrency)
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/queryset", s.handleQuerySet)
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/schema", s.handleSchema)
	s.mux.HandleFunc("GET /v1/knowledge", s.handleKnowledge)
	s.mux.HandleFunc("POST /v1/prime", s.handlePrime)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.handler = s.middleware(s.mux)
	return s
}

// Metrics returns the registry the server records into.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// ServeHTTP implements http.Handler (middleware included).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	SQL string `json:"sql"`
}

// QuerySetRequest is the body of POST /v1/queryset: an explicit query
// set, for clients that resolve predicates themselves.
type QuerySetRequest struct {
	Kind    string `json:"kind"`
	Indices []int  `json:"indices"`
}

// QueryResponse is the body of query responses. Answer is a pointer so
// a legitimate answer of exactly 0 is serialized as {"denied":false,
// "answer":0} rather than silently omitted; on denials the field is
// absent.
type QueryResponse struct {
	Denied bool     `json:"denied"`
	Answer *float64 `json:"answer,omitempty"`
}

// UpdateRequest is the body of POST /v1/update.
type UpdateRequest struct {
	Index int     `json:"index"`
	Value float64 `json:"value"`
}

// StatsResponse is the body of GET /v1/stats. All four fields are read
// in one engine lock acquisition (core.Engine.Stats), so answered+denied
// is never a torn snapshot.
type StatsResponse struct {
	Answered      int `json:"answered"`
	Denied        int `json:"denied"`
	Records       int `json:"records"`
	Modifications int `json:"modifications"`
}

// errorResponse carries machine-readable failures.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeBody decodes a JSON body capped at MaxBodyBytes. It reports
// oversized bodies distinctly so the caller can 413 instead of 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) (ok, tooLarge bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true, false
	}
	var mbe *http.MaxBytesError
	return false, errors.As(err, &mbe)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	ok, tooLarge := s.decodeBody(w, r, &req)
	if tooLarge {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body too large"})
		return
	}
	if !ok || req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"sql\": \"SELECT ...\"}"})
		return
	}
	resp, err := s.sdb.Query(req.SQL)
	s.writeQueryResult(w, resp, err)
}

func (s *Server) handleQuerySet(w http.ResponseWriter, r *http.Request) {
	var req QuerySetRequest
	ok, tooLarge := s.decodeBody(w, r, &req)
	if tooLarge {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body too large"})
		return
	}
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"kind\": ..., \"indices\": [...]}"})
		return
	}
	if len(req.Indices) > s.opts.MaxIndices {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: "too many indices (limit " + strconv.Itoa(s.opts.MaxIndices) + ")"})
		return
	}
	kind, err := query.ParseKind(req.Kind)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp, err := s.sdb.Engine().Ask(query.New(kind, req.Indices...))
	s.writeQueryResult(w, resp, err)
}

func (s *Server) writeQueryResult(w http.ResponseWriter, resp core.Response, err error) {
	switch {
	case errors.Is(err, core.ErrNoAuditor) || errors.Is(err, audit.ErrUnsupportedKind):
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case resp.Denied:
		writeJSON(w, http.StatusOK, QueryResponse{Denied: true})
	default:
		ans := resp.Answer
		writeJSON(w, http.StatusOK, QueryResponse{Answer: &ans})
	}
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	ok, tooLarge := s.decodeBody(w, r, &req)
	if tooLarge {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body too large"})
		return
	}
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"index\": i, \"value\": v}"})
		return
	}
	if err := s.sdb.Engine().Update(req.Index, req.Value); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sdb.Engine().Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Answered:      st.Answered,
		Denied:        st.Denied,
		Records:       st.Records,
		Modifications: st.Modifications,
	})
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	ds := s.sdb.Engine().Dataset()
	type attr struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	var attrs []attr
	for _, a := range ds.Schema() {
		k := "numeric"
		if a.Kind != 0 {
			k = "categorical"
		}
		attrs = append(attrs, attr{Name: a.Name, Kind: k})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"records":    ds.N(),
		"attributes": attrs,
	})
}

// PrimeRequest is the body of POST /v1/prime: "important" queries to
// answer up front so they stay answerable forever (the paper's Section 7
// remedy). The whole list runs under one engine lock acquisition, so
// user queries cannot interleave mid-prime; a denial mid-list leaves
// earlier primes committed and reports the offender with 409.
type PrimeRequest struct {
	Queries []QuerySetRequest `json:"queries"`
}

func (s *Server) handlePrime(w http.ResponseWriter, r *http.Request) {
	var req PrimeRequest
	ok, tooLarge := s.decodeBody(w, r, &req)
	if tooLarge {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body too large"})
		return
	}
	if !ok || len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"queries\": [{\"kind\":...,\"indices\":[...]}, ...]}"})
		return
	}
	if len(req.Queries) > s.opts.MaxPrimeQueries {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: "too many prime queries (limit " + strconv.Itoa(s.opts.MaxPrimeQueries) + ")"})
		return
	}
	var qs []query.Query
	for _, q := range req.Queries {
		if len(q.Indices) > s.opts.MaxIndices {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: "too many indices (limit " + strconv.Itoa(s.opts.MaxIndices) + ")"})
			return
		}
		kind, err := query.ParseKind(q.Kind)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		qs = append(qs, query.New(kind, q.Indices...))
	}
	if err := s.sdb.Engine().Prime(qs); err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "primed": len(qs)})
}

// KnowledgeResponse is the body of GET /v1/knowledge: what the answered
// history exposes about each record, per reporting auditor.
type KnowledgeResponse struct {
	Auditors map[string][]audit.ElementKnowledge `json:"auditors"`
}

func (s *Server) handleKnowledge(w http.ResponseWriter, _ *http.Request) {
	// KnowledgeSnapshot reads every auditor under the engine lock — the
	// previous implementation called Auditor()/Knowledge() unlocked and
	// raced with concurrent Ask/Record.
	snap := s.sdb.Engine().KnowledgeSnapshot()
	out := KnowledgeResponse{Auditors: make(map[string][]audit.ElementKnowledge, len(snap))}
	for name, ks := range snap {
		out.Auditors[name] = sanitizeKnowledge(ks)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is a liveness probe: the process is up and the mux is
// serving. It deliberately avoids the engine lock so a long-running
// decide cannot fail the probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics exports the registry as JSON: HTTP counters/latency
// per route, engine decision counters per aggregate kind, and the
// decide-latency histogram.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// sanitizeKnowledge replaces ±Inf bounds (not expressible in JSON) with
// omitted extremes encoded as NaN-free sentinels: the bound fields keep
// their values only when finite; infinite bounds become ±MaxFloat64.
func sanitizeKnowledge(ks []audit.ElementKnowledge) []audit.ElementKnowledge {
	const huge = 1.797693134862315e+308
	out := append([]audit.ElementKnowledge(nil), ks...)
	for i := range out {
		if out[i].Lower < -huge || out[i].Lower != out[i].Lower {
			out[i].Lower = -huge
		}
		if out[i].Upper > huge || out[i].Upper != out[i].Upper {
			out[i].Upper = huge
		}
	}
	return out
}
