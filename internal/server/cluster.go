package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"queryaudit/internal/cluster"
	"queryaudit/internal/core"
	"queryaudit/internal/metrics"
	"queryaudit/internal/session"
)

// Cluster integration: in a sharded fleet every node knows which shard
// it is (cluster.NodeView) and fences analysts it does not own with a
// 421 naming the real owner, so the router and any direct client
// converge on the correct shard instead of silently forking an
// analyst's audit timeline across nodes. The node also serves the
// migration endpoints the rebalance path drives (journal export,
// replayed import, conditional forget) and the per-node status the
// router aggregates into GET /v1/cluster.

// maxImportBody bounds a migrated journal's wire size. Session journals
// can legitimately exceed the ordinary request cap by orders of
// magnitude, so the import endpoint gets its own ceiling.
const maxImportBody = 64 << 20

// WithCluster attaches a cluster view: session-scoped endpoints answer
// 421 for analysts owned by another shard, every response carries an
// X-Shard-ID header, and the /v1/cluster/* node endpoints mount.
func WithCluster(v *cluster.NodeView) Option { return func(s *Server) { s.cview = v } }

// clusterRoutes are the node-side cluster endpoints, mounted when a
// NodeView is attached (see newServer).
func (s *Server) clusterRoutes() {
	s.clusterM = metrics.NewClusterNodeMetrics(s.reg)
	s.mux.HandleFunc("GET /v1/cluster/node", s.handleClusterNode)
	s.mux.HandleFunc("GET /v1/cluster/journal", s.whenReady(s.handleClusterJournal))
	s.mux.HandleFunc("POST /v1/cluster/import", s.whenReady(s.writable(s.handleClusterImport)))
	s.mux.HandleFunc("POST /v1/cluster/forget", s.whenReady(s.writable(s.handleClusterForget)))
	s.mux.HandleFunc("POST /v1/cluster/config", s.handleClusterConfig)
}

// ownershipGate enforces shard ownership for one analyst. It reports
// whether the handler should proceed; a miss answers 421 naming the
// owning shard's primary so the caller can follow in one hop.
func (s *Server) ownershipGate(w http.ResponseWriter, analyst string) bool {
	if s.cview == nil {
		return true
	}
	owner, ok := s.cview.Owns(analyst)
	if ok {
		return true
	}
	s.clusterM.Misrouted.Inc()
	s.writeJSON(w, http.StatusMisdirectedRequest, cluster.MisdirectedBody{
		Error:      "analyst " + analyst + " is owned by shard " + owner.ID + ", not this node",
		Shard:      owner.ID,
		Epoch:      owner.Epoch,
		PrimaryURL: owner.Primary,
	})
	return false
}

// handleClusterNode reports this node's cluster identity and
// replication position — one row of the router's GET /v1/cluster view.
func (s *Server) handleClusterNode(w http.ResponseWriter, _ *http.Request) {
	st := cluster.NodeStatus{
		Shard:           s.cview.ShardID(),
		Role:            "primary", // an unreplicated shard is its own primary
		SessionsTracked: s.mgr.Tracked(),
		SessionsLive:    s.mgr.Live(),
		Reloads:         s.cview.Reloads(),
	}
	if s.repl != nil {
		rs := s.repl.Status()
		st.Role = rs.Role
		st.Epoch = rs.Epoch
		st.Head = rs.Head
		st.Applied = rs.Applied
		st.Lag = rs.Lag
		st.Quarantined = rs.Quarantined
	}
	s.writeJSON(w, http.StatusOK, st)
}

// handleClusterJournal exports one session's journal for migration.
// Deliberately NOT ownership-gated: the exporting node is usually the
// one that just LOST ownership under the new descriptor.
func (s *Server) handleClusterJournal(w http.ResponseWriter, r *http.Request) {
	analyst := r.URL.Query().Get("analyst")
	if analyst == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing ?analyst="})
		return
	}
	snap, ok := s.mgr.Export(analyst)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "no session for analyst " + analyst})
		return
	}
	s.writeJSON(w, http.StatusOK, cluster.JournalResponse{
		Shard:    s.cview.ShardID(),
		Snapshot: snap,
	})
}

// handleClusterImport admits a migrated session: validate the shipped
// digest chain, replay it into a fresh engine, and report the replayed
// position for the migrator to verify. A conflicting existing timeline
// is 409 — never silently resolved.
func (s *Server) handleClusterImport(w http.ResponseWriter, r *http.Request) {
	var req cluster.ImportRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxImportBody)).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed import request: " + err.Error()})
		return
	}
	seq, digest, err := s.mgr.Import(req.Snapshot)
	if err != nil {
		s.clusterM.ImportFailures.Inc()
		switch {
		case errors.Is(err, session.ErrImportConflict):
			s.writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		case s.writeSessionErr(w, err):
		default:
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
		return
	}
	s.clusterM.Imports.Inc()
	if s.repl != nil {
		// Ship the imported journal to this shard's followers as one
		// record: the history bypassed the decision tap, so without this
		// the replica would see the next live event as a sequence gap.
		s.repl.JournalSessionImport(req.Snapshot)
	}
	s.writeJSON(w, http.StatusOK, cluster.ImportResponse{
		Analyst: req.Snapshot.Analyst,
		Seq:     seq,
		Digest:  digest.Hex(),
	})
}

// handleClusterForget drops a migrated-away session at its verified
// position — the atomic cut of the handoff. The analyst is then fenced
// to the successor shard until the next descriptor reload, so a request
// racing the config push cannot start a fresh timeline here.
func (s *Server) handleClusterForget(w http.ResponseWriter, r *http.Request) {
	var req cluster.ForgetRequest
	ok, tooLarge := s.decodeBody(w, r, &req)
	if tooLarge {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body too large"})
		return
	}
	if !ok || req.Analyst == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must name analyst, seq and digest"})
		return
	}
	digest, err := core.ParseDigest(req.Digest)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if err := s.mgr.DropIfAt(req.Analyst, req.Seq, digest); err != nil {
		if errors.Is(err, session.ErrPositionMoved) {
			s.writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
			return
		}
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.SuccessorShard != "" {
		s.cview.MarkMoved(req.Analyst, cluster.ShardSpec{
			ID:      req.SuccessorShard,
			Primary: req.SuccessorURL,
		})
	}
	s.clusterM.Forgets.Inc()
	if s.repl != nil {
		s.repl.JournalSessionForget(req.Analyst)
	}
	s.writeJSON(w, http.StatusOK, cluster.ForgetResponse{Dropped: true})
}

// handleClusterConfig swaps in a new fleet descriptor (the rebalance
// push). The node revalidates the descriptor and refuses one that drops
// its own shard; a higher epoch for this shard in the new descriptor is
// adopted into the replication fence.
func (s *Server) handleClusterConfig(w http.ResponseWriter, r *http.Request) {
	var req cluster.ConfigRequest
	ok, tooLarge := s.decodeBody(w, r, &req)
	if tooLarge {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body too large"})
		return
	}
	if !ok || len(req.Fleet) == 0 {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"fleet\": {...}}"})
		return
	}
	fleet, err := cluster.ParseFleet(bytes.NewReader(req.Fleet))
	if err != nil {
		s.writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	reloads, err := s.cview.Reload(fleet)
	if err != nil {
		s.writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	s.clusterM.RingRebuilds.Inc()
	if sp, ok := fleet.Shard(s.cview.ShardID()); ok && s.repl != nil {
		s.repl.AdoptEpoch(sp.Epoch)
	}
	s.writeJSON(w, http.StatusOK, cluster.ConfigResponse{
		Shard:   s.cview.ShardID(),
		Shards:  len(fleet.Shards),
		Reloads: reloads,
	})
}
