package server

import (
	"context"
	"errors"
	"net"
	"net/http"
)

// httpServer builds the hardened http.Server with the configured
// timeouts.
func (s *Server) httpServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: s.opts.ReadHeaderTimeout,
		ReadTimeout:       s.opts.ReadTimeout,
		WriteTimeout:      s.opts.WriteTimeout,
		IdleTimeout:       s.opts.IdleTimeout,
	}
}

// Run serves on addr until ctx is cancelled, then drains in-flight
// requests gracefully (bounded by Options.ShutdownTimeout) and returns
// nil on a clean shutdown. If ready is non-nil it receives the bound
// listener address once the socket is open (useful with ":0").
func (s *Server) Run(ctx context.Context, addr string, ready chan<- net.Addr) error {
	srv := s.httpServer(addr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), s.opts.ShutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Drain window expired: force-close the stragglers.
		_ = srv.Close()
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe runs the hardened server on addr (blocking, no
// graceful shutdown — prefer Run).
func (s *Server) ListenAndServe(addr string) error {
	return s.httpServer(addr).ListenAndServe()
}
