package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

func newTestServer(t *testing.T, n int) (*httptest.Server, *core.Engine) {
	t.Helper()
	ds := dataset.GenerateCompany(randx.New(1), dataset.DefaultCompanyConfig(n))
	eng := core.NewEngine(ds)
	eng.Use(sumfull.New(n), query.Sum)
	eng.Use(maxfull.New(n), query.Max)
	srv := httptest.NewServer(New(core.NewSDB(eng, "salary")))
	t.Cleanup(srv.Close)
	return srv, eng
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

// TestQueryEndpoint: SQL answers and denials over HTTP.
func TestQueryEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, 60)
	resp, out := postJSON(t, srv.URL+"/v1/query", QueryRequest{SQL: "SELECT sum(salary) WHERE age >= 21"})
	if resp.StatusCode != http.StatusOK || out["denied"] == true {
		t.Fatalf("total should be answered: %d %v", resp.StatusCode, out)
	}
	// A complement that drops exactly one record must be denied: with the
	// total answered it would expose that record's salary.
	all := make([]int, 60)
	for i := range all {
		all[i] = i
	}
	resp, out = postJSON(t, srv.URL+"/v1/queryset", QuerySetRequest{Kind: "sum", Indices: all[1:]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["denied"] != true {
		t.Fatalf("complement must be denied: %v", out)
	}
}

// TestQuerySetEndpoint: explicit index sets.
func TestQuerySetEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, 20)
	resp, out := postJSON(t, srv.URL+"/v1/queryset", QuerySetRequest{Kind: "max", Indices: []int{0, 1, 2, 3}})
	if resp.StatusCode != http.StatusOK || out["denied"] == true {
		t.Fatalf("fresh max should answer: %d %v", resp.StatusCode, out)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/queryset", QuerySetRequest{Kind: "median", Indices: []int{0, 1, 2}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unsupported aggregate should be 422, got %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/queryset", QuerySetRequest{Kind: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind should be 400, got %d", resp.StatusCode)
	}
}

// TestUpdateAndStats: updates flow through and counters move.
func TestUpdateAndStats(t *testing.T) {
	srv, eng := newTestServer(t, 20)
	if _, out := postJSON(t, srv.URL+"/v1/update", UpdateRequest{Index: 3, Value: 99999}); out["ok"] != true {
		t.Fatalf("update failed: %v", out)
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Records != 20 || stats.Modifications != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if eng.Dataset().Sensitive(3) != 99999 {
		t.Fatal("update did not reach the dataset")
	}
}

// TestSchemaEndpoint.
func TestSchemaEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, 10)
	resp, err := http.Get(srv.URL + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["records"].(float64) != 10 {
		t.Fatalf("schema = %v", out)
	}
}

// TestMalformedBodies are 400s.
func TestMalformedBodies(t *testing.T) {
	srv, _ := newTestServer(t, 10)
	for _, ep := range []string{"/v1/query", "/v1/queryset", "/v1/update"} {
		resp, err := http.Post(srv.URL+ep, "application/json", bytes.NewReader([]byte("{")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", ep, resp.StatusCode)
		}
	}
}

// TestConcurrentQueriesSafe: hammer the server from many goroutines; the
// engine's lock must keep the auditors consistent (run with -race).
func TestConcurrentQueriesSafe(t *testing.T) {
	srv, eng := newTestServer(t, 40)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				lo := 21 + (g+i)%30
				sql := fmt.Sprintf("SELECT sum(salary) WHERE age BETWEEN %d AND %d", lo, lo+8)
				raw, _ := json.Marshal(QueryRequest{SQL: sql})
				resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(raw))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	if eng.Answered()+eng.Denied() == 0 {
		t.Fatal("no queries were processed")
	}
}

// TestKnowledgeEndpoint: the exposure report reflects answered queries.
func TestKnowledgeEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, 12)
	postJSON(t, srv.URL+"/v1/queryset", QuerySetRequest{Kind: "max", Indices: []int{0, 1, 2, 3}})
	resp, err := http.Get(srv.URL + "/v1/knowledge")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out KnowledgeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	ks, ok := out.Auditors["max-full-disclosure"]
	if !ok {
		t.Fatalf("missing max auditor in %v", out.Auditors)
	}
	if len(ks) != 12 {
		t.Fatalf("knowledge entries = %d, want 12", len(ks))
	}
	bounded := 0
	for _, k := range ks {
		if k.Upper < 1e308 {
			bounded++
		}
	}
	if bounded != 4 {
		t.Fatalf("bounded elements = %d, want the 4 queried ones", bounded)
	}
}

// TestPrimeEndpoint: primed queries commit and stay answerable; an
// unsafe prime list is refused with 409.
func TestPrimeEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, 10)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	resp, out := postJSON(t, srv.URL+"/v1/prime", PrimeRequest{
		Queries: []QuerySetRequest{
			{Kind: "sum", Indices: all},
			{Kind: "sum", Indices: all[:5]},
		},
	})
	if resp.StatusCode != http.StatusOK || out["primed"].(float64) != 2 {
		t.Fatalf("prime failed: %d %v", resp.StatusCode, out)
	}
	// Primed queries remain answerable.
	r2, out2 := postJSON(t, srv.URL+"/v1/queryset", QuerySetRequest{Kind: "sum", Indices: all[:5]})
	if r2.StatusCode != http.StatusOK || out2["denied"] == true {
		t.Fatalf("primed query denied later: %v", out2)
	}
	// An unsafe prime list 409s (a singleton sum is always compromise).
	r3, _ := postJSON(t, srv.URL+"/v1/prime", PrimeRequest{
		Queries: []QuerySetRequest{{Kind: "sum", Indices: all[:1]}},
	})
	if r3.StatusCode != http.StatusConflict {
		t.Fatalf("unsafe prime should 409, got %d", r3.StatusCode)
	}
	// Malformed bodies 400.
	r4, _ := postJSON(t, srv.URL+"/v1/prime", map[string]any{"queries": []any{}})
	if r4.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty prime should 400, got %d", r4.StatusCode)
	}
}

// TestUnregisteredKind: a kind with no auditor is 422, not a denial.
func TestUnregisteredKind(t *testing.T) {
	srv, _ := newTestServer(t, 10) // registers Sum and Max only
	resp, _ := postJSON(t, srv.URL+"/v1/queryset", QuerySetRequest{Kind: "min", Indices: []int{0, 1}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("min without auditor should 422, got %d", resp.StatusCode)
	}
}

// TestMethodNotAllowed: the JSON endpoints reject wrong verbs.
func TestMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t, 10)
	resp, err := http.Get(srv.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query should 405, got %d", resp.StatusCode)
	}
}
