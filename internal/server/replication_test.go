package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/maxminfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/replica"
	"queryaudit/internal/session"
)

func replSpec(n int) *core.EngineSpec {
	ds := dataset.UniformDuplicateFree(randx.New(5), n, 1, 100)
	sp := core.NewEngineSpec(ds)
	sp.Register(func() (audit.Auditor, error) { return sumfull.New(n), nil }, query.Sum)
	sp.Register(func() (audit.Auditor, error) { return maxminfull.New(n), nil }, query.Max, query.Min)
	return sp
}

// newReplicaServer builds a session server attached to a replication
// node in the given role.
func newReplicaServer(t *testing.T, role replica.Role) (string, *replica.Node) {
	t.Helper()
	mgr, err := session.NewManager(replSpec(8), session.Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	node := replica.NewNode(mgr, role, 3, "http://primary.internal:9090", replica.Config{})
	hs, _, _ := newSessionServerFrom(t, mgr, WithReplication(node))
	return hs, node
}

// newSessionServerFrom is newSessionServer over a pre-built manager.
func newSessionServerFrom(t *testing.T, mgr *session.Manager, opts ...Option) (string, *Server, *session.Manager) {
	t.Helper()
	srv := NewWithSessions(mgr, "salary", opts...)
	hs := newHTTP(t, srv)
	return hs, srv, mgr
}

// TestReplicaRejectsWrites: every state-mutating endpoint on a replica
// answers 421 with the primary's address, while reads stay open — the
// role gate that keeps a follower from forking the audit timeline.
func TestReplicaRejectsWrites(t *testing.T) {
	url, node := newReplicaServer(t, replica.RoleReplica)

	for _, path := range []string{"/v1/query", "/v1/queryset", "/v1/update", "/v1/prime"} {
		resp, err := http.Post(url+path, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Role       string `json:"role"`
			Epoch      uint64 `json:"epoch"`
			PrimaryURL string `json:"primary_url"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: decode 421 body: %v", path, err)
		}
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("%s on replica: status %d, want 421", path, resp.StatusCode)
		}
		if body.Role != "replica" || body.Epoch != 3 || body.PrimaryURL != "http://primary.internal:9090" {
			t.Fatalf("%s: 421 body %+v lacks routing context", path, body)
		}
	}

	for _, path := range []string{"/v1/sessions", "/v1/stats", "/v1/schema", "/healthz", "/v1/metrics"} {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s on replica: status %d, want 200", path, resp.StatusCode)
		}
	}

	// Promotion opens the write path on the spot.
	if _, err := node.Promote(); err != nil {
		t.Fatal(err)
	}
	status, out := askAs(t, url, "alice", "sum", []int{0, 1, 2})
	if status != http.StatusOK {
		t.Fatalf("write after promote: status %d (%v), want 200", status, out)
	}
}

// TestQuarantinedSessionUnavailable: a session fenced after divergence
// answers 503 (with Retry-After) on session-scoped reads, while other
// analysts are untouched.
func TestQuarantinedSessionUnavailable(t *testing.T) {
	url, node := newReplicaServer(t, replica.RoleReplica)
	node.Quarantine("mallory", "digest mismatch at seq 7")

	req, _ := http.NewRequest(http.MethodGet, url+"/v1/stats", nil)
	req.Header.Set("X-Analyst-ID", "mallory")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined analyst stats: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if !strings.Contains(string(raw), "quarantined") || !strings.Contains(string(raw), "digest mismatch at seq 7") {
		t.Fatalf("503 body %q does not explain the quarantine", raw)
	}

	req, _ = http.NewRequest(http.MethodGet, url+"/v1/stats", nil)
	req.Header.Set("X-Analyst-ID", "alice")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy analyst stats: status %d, want 200", resp.StatusCode)
	}
}

// TestMetricsContentNegotiation: /v1/metrics speaks JSON by default and
// the Prometheus text exposition when a scrape asks for it.
func TestMetricsContentNegotiation(t *testing.T) {
	hs, _, _ := newSessionServerFrom(t, newPlainManager(t))

	get := func(accept string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, hs+"/v1/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(raw)
	}

	// Default (curl, browser): JSON.
	resp, body := get("")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q, want application/json", ct)
	}
	if !json.Valid([]byte(body)) {
		t.Fatal("default metrics body is not JSON")
	}

	// Prometheus scrape: text exposition.
	for _, accept := range []string{
		"text/plain",
		"text/plain;version=0.0.4;q=0.5",
		"application/openmetrics-text; version=1.0.0, text/plain;version=0.0.4;q=0.5",
	} {
		resp, body = get(accept)
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("Accept %q: content type %q, want text/plain exposition", accept, ct)
		}
		if !strings.Contains(body, "# TYPE") {
			t.Fatalf("Accept %q: body has no # TYPE lines:\n%s", accept, body)
		}
	}

	// An explicit JSON preference wins even when text/plain follows.
	resp, body = get("application/json, text/plain")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json-first accept: content type %q, want application/json", ct)
	}
	if !json.Valid([]byte(body)) {
		t.Fatal("json-first accept: body is not JSON")
	}
}

func newPlainManager(t *testing.T) *session.Manager {
	t.Helper()
	mgr, err := session.NewManager(replSpec(8), session.Config{NoJanitor: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	return mgr
}

// newHTTP wraps a handler in an httptest server bound to this test.
func newHTTP(t *testing.T, h http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv.URL
}
