// Monte Carlo instrumentation: an mcpar.Observer implementation backed by
// a Registry. Lives here (not in mcpar) so the decision engine stays free
// of any metrics dependency — mcpar defines the Observer interface, this
// file satisfies it structurally.
package metrics

import "time"

// MCSampleBuckets bound the per-decision sample-count histogram: the
// Chernoff budgets run from a handful of samples (tiny T/δ) to the
// O((T/δ)·log(T/δ)) thousands of the paper-scale runs.
var MCSampleBuckets = []float64{
	4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
}

// MCSpeedupBuckets bound the per-decision parallel-speedup histogram
// (busy/wall — 1.0 means sequential, GOMAXPROCS is the ceiling).
var MCSpeedupBuckets = []float64{
	0.5, 0.75, 1, 1.25, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32,
}

// MCCollector implements mcpar.Observer over a Registry. Its callback is
// atomic-only, safe to run inside the engine lock (auditor decisions run
// under it).
//
// Exported names:
//
//	mc_decisions_total            Monte Carlo decisions taken
//	mc_samples_total              samples actually evaluated
//	mc_samples_saved_total        budgeted samples skipped by early exit
//	mc_unsafe_votes_total         unsafe verdicts across all decisions
//	mc_samples_per_decision       histogram of evaluated samples/decision
//	mc_parallel_speedup           histogram of busy/wall per decision
type MCCollector struct {
	decisions *Counter
	samples   *Counter
	saved     *Counter
	votes     *Counter
	perDec    *Histogram
	speedup   *Histogram
}

// NewMCCollector wires a collector into reg.
func NewMCCollector(reg *Registry) *MCCollector {
	return &MCCollector{
		decisions: reg.Counter("mc_decisions_total"),
		samples:   reg.Counter("mc_samples_total"),
		saved:     reg.Counter("mc_samples_saved_total"),
		votes:     reg.Counter("mc_unsafe_votes_total"),
		perDec:    reg.Histogram("mc_samples_per_decision", MCSampleBuckets),
		speedup:   reg.Histogram("mc_parallel_speedup", MCSpeedupBuckets),
	}
}

// ObserveMC implements mcpar.Observer.
func (c *MCCollector) ObserveMC(budget, evaluated, votes, workers int, wall, busy time.Duration) {
	c.decisions.Inc()
	c.samples.Add(int64(evaluated))
	if budget > evaluated {
		c.saved.Add(int64(budget - evaluated))
	}
	c.votes.Add(int64(votes))
	c.perDec.Observe(float64(evaluated))
	if wall > 0 {
		c.speedup.Observe(busy.Seconds() / wall.Seconds())
	}
}

// SchedCollector implements mcpar.SchedObserver over a Registry: how the
// shared decision scheduler splits sample work between the assist pool
// and the deciding goroutines themselves. Atomic-only, like MCCollector.
//
// Exported names:
//
//	mcsched_runs_total            scheduler-assisted decisions
//	mcsched_tokens_total          work tokens enqueued
//	mcsched_assist_samples_total  samples evaluated by pool workers
//	mcsched_caller_samples_total  samples evaluated by deciding callers
type SchedCollector struct {
	runs    *Counter
	tokens  *Counter
	assist  *Counter
	callers *Counter
}

// NewSchedCollector wires a collector into reg.
func NewSchedCollector(reg *Registry) *SchedCollector {
	return &SchedCollector{
		runs:    reg.Counter("mcsched_runs_total"),
		tokens:  reg.Counter("mcsched_tokens_total"),
		assist:  reg.Counter("mcsched_assist_samples_total"),
		callers: reg.Counter("mcsched_caller_samples_total"),
	}
}

// ObserveSchedRun implements mcpar.SchedObserver.
func (c *SchedCollector) ObserveSchedRun(tokens, assisted, caller int) {
	c.runs.Inc()
	c.tokens.Add(int64(tokens))
	c.assist.Add(int64(assisted))
	c.callers.Add(int64(caller))
}
