// Query-index instrumentation: a qindex.Observer implementation backed
// by a Registry. Lives here (not in internal/qindex) so the resolver
// stays free of any metrics dependency — qindex defines the Observer
// interface, this file satisfies it structurally.
package metrics

import "time"

// QIndexBuildBuckets bound the index-build histogram: a small demo
// dataset indexes in microseconds; a million-row deployment takes
// fractions of a second.
var QIndexBuildBuckets = []float64{
	0.00025, 0.001, 0.0025, 0.01, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// QIndexCollector implements qindex.Observer over a Registry. All
// callbacks are atomic-only; some run while the resolver lock is held,
// so they must stay that way.
//
// Exported names:
//
//	qindex_sql_hits_total        statement-memo hits
//	qindex_sql_misses_total      statement-memo misses (parse + resolve)
//	qindex_pred_hits_total       predicate-memo hits
//	qindex_pred_misses_total     predicate-memo misses (index walk)
//	qindex_intern_hits_total     set internings that found the canonical
//	qindex_intern_misses_total   set internings that created a canonical
//	qindex_evictions_sql_total   statement-memo LRU evictions
//	qindex_evictions_pred_total  predicate-memo LRU evictions
//	qindex_evictions_intern_total  canonical-set-table LRU evictions
//	qindex_builds_total          index builds
//	qindex_build_rows_total      rows covered by builds
//	qindex_build_seconds         histogram of per-build wall time
type QIndexCollector struct {
	sqlHits     *Counter
	sqlMisses   *Counter
	predHits    *Counter
	predMisses  *Counter
	internHits  *Counter
	internMiss  *Counter
	evictSQL    *Counter
	evictPred   *Counter
	evictIntern *Counter
	builds      *Counter
	buildRows   *Counter
	buildTime   *Histogram
}

// NewQIndexCollector wires a collector into reg.
func NewQIndexCollector(reg *Registry) *QIndexCollector {
	return &QIndexCollector{
		sqlHits:     reg.Counter("qindex_sql_hits_total"),
		sqlMisses:   reg.Counter("qindex_sql_misses_total"),
		predHits:    reg.Counter("qindex_pred_hits_total"),
		predMisses:  reg.Counter("qindex_pred_misses_total"),
		internHits:  reg.Counter("qindex_intern_hits_total"),
		internMiss:  reg.Counter("qindex_intern_misses_total"),
		evictSQL:    reg.Counter("qindex_evictions_sql_total"),
		evictPred:   reg.Counter("qindex_evictions_pred_total"),
		evictIntern: reg.Counter("qindex_evictions_intern_total"),
		builds:      reg.Counter("qindex_builds_total"),
		buildRows:   reg.Counter("qindex_build_rows_total"),
		buildTime:   reg.Histogram("qindex_build_seconds", QIndexBuildBuckets),
	}
}

// ObserveResolve implements qindex.Observer.
func (c *QIndexCollector) ObserveResolve(layer string, hit bool) {
	switch {
	case layer == "sql" && hit:
		c.sqlHits.Inc()
	case layer == "sql":
		c.sqlMisses.Inc()
	case hit:
		c.predHits.Inc()
	default:
		c.predMisses.Inc()
	}
}

// ObserveIntern implements qindex.Observer.
func (c *QIndexCollector) ObserveIntern(hit bool) {
	if hit {
		c.internHits.Inc()
	} else {
		c.internMiss.Inc()
	}
}

// ObserveEviction implements qindex.Observer.
func (c *QIndexCollector) ObserveEviction(layer string) {
	switch layer {
	case "sql":
		c.evictSQL.Inc()
	case "pred":
		c.evictPred.Inc()
	default:
		c.evictIntern.Inc()
	}
}

// ObserveBuild implements qindex.Observer.
func (c *QIndexCollector) ObserveBuild(rows int, elapsed time.Duration) {
	c.builds.Inc()
	c.buildRows.Add(int64(rows))
	c.buildTime.ObserveDuration(elapsed)
}
