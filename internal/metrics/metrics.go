// Package metrics is a tiny stdlib-only instrumentation layer for the
// serving path: atomic counters and fixed-bucket latency histograms,
// collected in a Registry that renders consistent snapshots for the
// GET /v1/metrics endpoint and for shutdown logs.
//
// All hot-path operations (Counter.Inc/Add, Histogram.Observe) are
// lock-free atomics, safe to call from request handlers and from inside
// the engine lock without extending the critical section measurably.
// Registration (get-or-create by name) takes a registry mutex and is
// expected at wiring time, not per request — handlers should capture the
// *Counter / *Histogram once.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (delta must be non-negative; counters only go up).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways
// (live sessions, current shard-lock waiters).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets covers 100µs … 10s, roughly logarithmic — wide
// enough for both the sub-millisecond full-disclosure deciders and the
// ~300ms probabilistic sum decisions noted in docs/DEPLOYMENT.md.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic bucket counts. The
// bucket with upper bound bounds[i] counts observations v <= bounds[i];
// one implicit overflow bucket counts the rest. Sum is kept as float64
// bits updated by compare-and-swap.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sumBit atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The bounds slice is copied. Passing nil uses DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBit.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBit.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBit.Load()) }

// HistogramSnapshot is a consistent-enough view of a histogram (bucket
// counts are read individually; under concurrent writes the snapshot may
// be mid-flight by a few observations, which is fine for monitoring).
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // len(Bounds)+1; last is overflow
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the snapshot by
// linear interpolation within the containing bucket. Returns the top
// bound for observations in the overflow bucket.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen float64
	lower := 0.0
	for i, c := range s.Buckets {
		if seen+float64(c) >= rank && c > 0 {
			if i >= len(s.Bounds) { // overflow bucket
				return s.Bounds[len(s.Bounds)-1]
			}
			upper := s.Bounds[i]
			frac := (rank - seen) / float64(c)
			return lower + frac*(upper-lower)
		}
		seen += float64(c)
		if i < len(s.Bounds) {
			lower = s.Bounds[i]
		}
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}

// Registry holds named counters, gauges and histograms.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter // auditlint:guardedby(mu)
	gauges map[string]*Gauge // auditlint:guardedby(mu)
	hists  map[string]*Histogram // auditlint:guardedby(mu)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds (nil = DefaultLatencyBuckets) if needed. Bounds
// are fixed at first registration; later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time export of every registered metric, with
// names sorted for stable rendering.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot exports all metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.ctrs)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.ctrs))
	for n := range r.ctrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
