// Engine instrumentation: a core.Observer implementation backed by a
// Registry. Lives here (not in core) so the engine stays free of any
// metrics dependency — core defines the Observer interface, this file
// satisfies it.
package metrics

import (
	"time"

	"queryaudit/internal/query"
)

// engineKinds are the aggregate kinds the collector pre-registers, so
// the hot path never takes the registry mutex.
var engineKinds = []query.Kind{
	query.Sum, query.Max, query.Min, query.Count, query.Avg, query.Median,
}

// EngineCollector implements core.Observer over a Registry. Its
// callbacks are atomic-only (counters and a histogram), safe to run
// inside the engine lock.
//
// Exported counter names:
//
//	engine_answered_total_<kind>  answered queries per aggregate kind
//	engine_denied_total_<kind>    denials per aggregate kind
//	engine_prime_ok_total         Prime calls that committed fully
//	engine_prime_failed_total     Prime calls that stopped mid-list
//	engine_primed_queries_total   individual queries committed by Prime
//
// and the histogram engine_decide_seconds (decide/evaluate/record
// critical-section latency).
type EngineCollector struct {
	answered map[query.Kind]*Counter
	denied   map[query.Kind]*Counter
	decide   *Histogram
	primeOK  *Counter
	primeErr *Counter
	primed   *Counter
}

// NewEngineCollector wires a collector into reg.
func NewEngineCollector(reg *Registry) *EngineCollector {
	c := &EngineCollector{
		answered: make(map[query.Kind]*Counter, len(engineKinds)),
		denied:   make(map[query.Kind]*Counter, len(engineKinds)),
		decide:   reg.Histogram("engine_decide_seconds", nil),
		primeOK:  reg.Counter("engine_prime_ok_total"),
		primeErr: reg.Counter("engine_prime_failed_total"),
		primed:   reg.Counter("engine_primed_queries_total"),
	}
	for _, k := range engineKinds {
		c.answered[k] = reg.Counter("engine_answered_total_" + k.String())
		c.denied[k] = reg.Counter("engine_denied_total_" + k.String())
	}
	return c
}

// ObserveDecision implements core.Observer.
func (c *EngineCollector) ObserveDecision(kind query.Kind, denied bool, elapsed time.Duration) {
	c.decide.ObserveDuration(elapsed)
	m := c.answered
	if denied {
		m = c.denied
	}
	if ctr, ok := m[kind]; ok {
		ctr.Inc()
	}
}

// ObservePrime implements core.Observer.
func (c *EngineCollector) ObservePrime(committed int, ok bool) {
	c.primed.Add(int64(committed))
	if ok {
		c.primeOK.Inc()
	} else {
		c.primeErr.Inc()
	}
}
