package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the content type of the text exposition
// format, for servers doing Accept-header negotiation.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-bucketed series with _sum and _count.
// Metric names are sanitized to the Prometheus grammar (anything outside
// [a-zA-Z0-9_:] becomes '_'), matching how scrapers would mangle them
// anyway; names are emitted sorted so the output is diffable.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writePromHistogram(w, promName(name), s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram. Buckets are cumulative per
// the exposition format, unlike the snapshot's per-bucket counts.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum); err != nil {
			return err
		}
	}
	if len(h.Buckets) > len(h.Bounds) {
		cum += h.Buckets[len(h.Bounds)]
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, cum, name, promFloat(h.Sum), name, h.Count)
	return err
}

// promFloat renders a float the way Prometheus clients conventionally do.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName maps a registry name onto the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
