package metrics

import (
	"sync"
	"testing"
	"time"

	"queryaudit/internal/query"
)

// TestCounterConcurrent: atomic increments from many goroutines land
// exactly (run with -race).
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
}

// TestHistogramBuckets: observations land in the right buckets, count
// and sum track, and boundary values go to the bucket they bound
// (v <= bound).
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 556.5 {
		t.Fatalf("sum = %v, want 556.5", s.Sum)
	}
	want := []int64{2, 1, 1, 1} // (≤1)=0.5,1 ; (≤10)=5 ; (≤100)=50 ; overflow=500
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
}

// TestHistogramConcurrent: concurrent observes lose nothing (the sum is
// CAS-maintained; run with -race).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 || h.Sum() != 4000 {
		t.Fatalf("count=%d sum=%v, want 4000/4000", h.Count(), h.Sum())
	}
}

// TestQuantile: the interpolated quantile is monotone and lands inside
// the containing bucket.
func TestQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("p50 = %v, want in (0,1]", q)
	}
	h.Observe(8) // overflow bucket
	s = h.Snapshot()
	if q := s.Quantile(1.0); q != 4 {
		t.Fatalf("p100 with overflow = %v, want top bound 4", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

// TestRegistryIdentity: get-or-create returns the same instance per
// name, and snapshots include everything registered.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a, b := r.Counter("x"), r.Counter("x")
	if a != b {
		t.Fatal("Counter(x) returned distinct instances")
	}
	a.Add(3)
	h := r.Histogram("lat", nil)
	h.Observe(0.001)
	s := r.Snapshot()
	if s.Counters["x"] != 3 {
		t.Fatalf("snapshot counter = %d, want 3", s.Counters["x"])
	}
	if s.Histograms["lat"].Count != 1 {
		t.Fatalf("snapshot histogram count = %d, want 1", s.Histograms["lat"].Count)
	}
	if names := r.CounterNames(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("names = %v", names)
	}
}

// TestEngineCollector: decision and prime events reach the right
// counters.
func TestEngineCollector(t *testing.T) {
	r := NewRegistry()
	c := NewEngineCollector(r)
	c.ObserveDecision(query.Sum, false, time.Millisecond)
	c.ObserveDecision(query.Sum, true, time.Millisecond)
	c.ObserveDecision(query.Max, false, time.Millisecond)
	c.ObservePrime(2, true)
	c.ObservePrime(1, false)
	s := r.Snapshot()
	checks := map[string]int64{
		"engine_answered_total_sum":   1,
		"engine_denied_total_sum":     1,
		"engine_answered_total_max":   1,
		"engine_prime_ok_total":       1,
		"engine_prime_failed_total":   1,
		"engine_primed_queries_total": 3,
	}
	for name, want := range checks {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if s.Histograms["engine_decide_seconds"].Count != 3 {
		t.Fatalf("decide histogram count = %d, want 3", s.Histograms["engine_decide_seconds"].Count)
	}
}
