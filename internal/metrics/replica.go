// Replication instrumentation: a replica.Observer implementation backed
// by a Registry. Lives here (not in internal/replica) so the replication
// node stays free of any metrics dependency — replica defines the
// Observer interface, this file satisfies it structurally.
package metrics

import "time"

// ReplicaApplyBuckets bound the batch-apply latency histogram: applying
// a handful of full-disclosure decisions is microseconds, a batch of
// probabilistic Monte Carlo decisions can run into seconds.
var ReplicaApplyBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10,
}

// ReplicaCollector implements replica.Observer over a Registry. All
// callbacks are atomic-only.
//
// Exported names:
//
//	replica_role                     gauge: 1 primary, 0 replica
//	replica_epoch                    gauge: current cluster epoch
//	replica_records_shipped_total    records served to stream polls
//	replica_stream_polls_total       stream polls served (heartbeats incl.)
//	replica_records_applied_total    records applied by the follower loop
//	replica_apply_batch_seconds      histogram of per-batch apply latency
//	replica_lag_records              gauge: follower lag in journal records
//	replica_divergence_total         transcript digest mismatches detected
//	replica_quarantined_sessions     gauge: sessions quarantined right now
//	replica_resync_total             snapshot resyncs performed
//	replica_reconnects_total         stream reconnect attempts after errors
type ReplicaCollector struct {
	role        *Gauge
	epoch       *Gauge
	shipped     *Counter
	polls       *Counter
	applied     *Counter
	applyBatch  *Histogram
	lag         *Gauge
	divergence  *Counter
	quarantined *Gauge
	resyncs     *Counter
	reconnects  *Counter
}

// NewReplicaCollector wires a collector into reg.
func NewReplicaCollector(reg *Registry) *ReplicaCollector {
	return &ReplicaCollector{
		role:        reg.Gauge("replica_role"),
		epoch:       reg.Gauge("replica_epoch"),
		shipped:     reg.Counter("replica_records_shipped_total"),
		polls:       reg.Counter("replica_stream_polls_total"),
		applied:     reg.Counter("replica_records_applied_total"),
		applyBatch:  reg.Histogram("replica_apply_batch_seconds", ReplicaApplyBuckets),
		lag:         reg.Gauge("replica_lag_records"),
		divergence:  reg.Counter("replica_divergence_total"),
		quarantined: reg.Gauge("replica_quarantined_sessions"),
		resyncs:     reg.Counter("replica_resync_total"),
		reconnects:  reg.Counter("replica_reconnects_total"),
	}
}

// ObserveRole implements replica.Observer. The role gauge uses the wire
// convention 1=primary, 0=replica so `max(replica_role)` alerts when a
// cluster has no primary and `sum(replica_role) > 1` when it has two.
func (c *ReplicaCollector) ObserveRole(primary bool, epoch uint64) {
	if primary {
		c.role.Set(1)
	} else {
		c.role.Set(0)
	}
	c.epoch.Set(int64(epoch))
}

// ObserveShipped implements replica.Observer.
func (c *ReplicaCollector) ObserveShipped(records int) { c.shipped.Add(int64(records)) }

// ObserveStreamPoll implements replica.Observer.
func (c *ReplicaCollector) ObserveStreamPoll() { c.polls.Inc() }

// ObserveApplied implements replica.Observer.
func (c *ReplicaCollector) ObserveApplied(records int, d time.Duration) {
	c.applied.Add(int64(records))
	c.applyBatch.ObserveDuration(d)
}

// ObserveLag implements replica.Observer.
func (c *ReplicaCollector) ObserveLag(records uint64) { c.lag.Set(int64(records)) }

// ObserveDivergence implements replica.Observer.
func (c *ReplicaCollector) ObserveDivergence() { c.divergence.Inc() }

// ObserveQuarantine implements replica.Observer.
func (c *ReplicaCollector) ObserveQuarantine(sessions int) { c.quarantined.Set(int64(sessions)) }

// ObserveResync implements replica.Observer.
func (c *ReplicaCollector) ObserveResync() { c.resyncs.Inc() }

// ObserveReconnect implements replica.Observer.
func (c *ReplicaCollector) ObserveReconnect() { c.reconnects.Inc() }
