// Session instrumentation: a session.Observer implementation backed by a
// Registry. Lives here (not in internal/session) so the session manager
// stays free of any metrics dependency — session defines the Observer
// interface, this file satisfies it structurally.
package metrics

import (
	"strconv"
	"time"
)

// SessionReplayBuckets bound the replay-latency histogram: rebuilding a
// short log is microseconds; replaying thousands of probabilistic
// decisions can take whole seconds.
var SessionReplayBuckets = []float64{
	0.00025, 0.001, 0.0025, 0.01, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// SessionCollector implements session.Observer over a Registry. All
// callbacks are atomic-only, safe to call from the session hot path.
//
// Exported names:
//
//	sessions_live              gauge: sessions with a materialized engine
//	sessions_tracked           gauge: sessions with a retained log
//	sessions_created_total     sessions admitted
//	sessions_evicted_total     engines dropped to their logs (LRU/admin)
//	sessions_expired_total     sessions removed by TTL expiry
//	sessions_rejected_total    admissions refused (503 upstream)
//	sessions_replayed_total    engines rebuilt by log replay
//	session_replay_events_total  log events replayed
//	session_replay_seconds     histogram of per-rebuild replay latency
//	session_shard_waiters_<i>  gauge: goroutines waiting on shard i's lock
type SessionCollector struct {
	live     *Gauge
	tracked  *Gauge
	created  *Counter
	evicted  *Counter
	expired  *Counter
	rejected *Counter
	replayed *Counter
	events   *Counter
	latency  *Histogram
	waiters  []*Gauge
}

// NewSessionCollector wires a collector for a manager with the given
// shard count into reg. Shard gauges are pre-registered so the lock path
// never touches the registry mutex.
func NewSessionCollector(reg *Registry, shards int) *SessionCollector {
	c := &SessionCollector{
		live:     reg.Gauge("sessions_live"),
		tracked:  reg.Gauge("sessions_tracked"),
		created:  reg.Counter("sessions_created_total"),
		evicted:  reg.Counter("sessions_evicted_total"),
		expired:  reg.Counter("sessions_expired_total"),
		rejected: reg.Counter("sessions_rejected_total"),
		replayed: reg.Counter("sessions_replayed_total"),
		events:   reg.Counter("session_replay_events_total"),
		latency:  reg.Histogram("session_replay_seconds", SessionReplayBuckets),
		waiters:  make([]*Gauge, shards),
	}
	for i := range c.waiters {
		c.waiters[i] = reg.Gauge("session_shard_waiters_" + strconv.Itoa(i))
	}
	return c
}

// ObserveSessionCreated implements session.Observer.
func (c *SessionCollector) ObserveSessionCreated() {
	c.created.Inc()
	c.tracked.Add(1)
}

// ObserveSessionEvicted implements session.Observer.
func (c *SessionCollector) ObserveSessionEvicted() { c.evicted.Inc() }

// ObserveSessionExpired implements session.Observer.
func (c *SessionCollector) ObserveSessionExpired() {
	c.expired.Inc()
	c.tracked.Add(-1)
}

// ObserveSessionRejected implements session.Observer.
func (c *SessionCollector) ObserveSessionRejected() { c.rejected.Inc() }

// ObserveReplay implements session.Observer.
func (c *SessionCollector) ObserveReplay(events int, d time.Duration) {
	c.replayed.Inc()
	c.events.Add(int64(events))
	c.latency.ObserveDuration(d)
}

// ObserveLive implements session.Observer.
func (c *SessionCollector) ObserveLive(delta int) { c.live.Add(int64(delta)) }

// ObserveShardWait implements session.Observer: +1 when a goroutine
// starts waiting on a contended shard lock, -1 once it acquires it.
func (c *SessionCollector) ObserveShardWait(shard, delta int) {
	if shard >= 0 && shard < len(c.waiters) {
		c.waiters[shard].Add(int64(delta))
	}
}
