// Cluster instrumentation: the cluster_* counters and gauges recorded
// by the clustered node (internal/server's ownership gate and migration
// endpoints) and by the routing tier (cmd/auditrouter). Lives here so
// both consumers share one naming scheme and internal/cluster itself
// stays metrics-free (and detrand-clean).
package metrics

import (
	"strings"
	"sync/atomic"
)

// ClusterNodeMetrics are the node-side cluster series.
//
// Exported names:
//
//	cluster_misrouted_421_total   requests 421'd to their owning shard
//	cluster_imports_total         migrated sessions imported (verified)
//	cluster_import_failures_total imports refused or failed
//	cluster_forgets_total         migrated sessions dropped at their cut
//	cluster_ring_rebuilds_total   fleet-descriptor reloads applied
type ClusterNodeMetrics struct {
	Misrouted      *Counter
	Imports        *Counter
	ImportFailures *Counter
	Forgets        *Counter
	RingRebuilds   *Counter
}

// NewClusterNodeMetrics wires the node-side series into reg.
func NewClusterNodeMetrics(reg *Registry) *ClusterNodeMetrics {
	return &ClusterNodeMetrics{
		Misrouted:      reg.Counter("cluster_misrouted_421_total"),
		Imports:        reg.Counter("cluster_imports_total"),
		ImportFailures: reg.Counter("cluster_import_failures_total"),
		Forgets:        reg.Counter("cluster_forgets_total"),
		RingRebuilds:   reg.Counter("cluster_ring_rebuilds_total"),
	}
}

// ClusterRouterMetrics are the routing-tier series. Per-shard series
// are flat names suffixed with the shard ID (the registry is flat by
// design), pre-registered by RegisterShards so the per-request path
// never takes the registry mutex.
//
// Exported names:
//
//	cluster_requests_routed_total      requests forwarded to a shard
//	cluster_routed_total_<shard>       per-shard forwarded requests
//	cluster_retries_421_total          421 bodies followed (one hop)
//	cluster_breaker_trips_total        circuit-breaker opens
//	cluster_failovers_total            active-URL flips primary→replica
//	cluster_proxy_errors_total         502s served (shard unreachable)
//	cluster_broadcasts_total           fan-out writes (/v1/update)
//	cluster_migrations_total           sessions migrated by rebalances
//	cluster_migration_failures_total   migrations that failed/conflicted
//	cluster_rebalances_total           rebalance plans executed
//	cluster_ring_rebuilds_total        router ring swaps
//	cluster_shards                     gauge: shard count in the ring
//	cluster_shard_lag_<shard>          gauge: replication lag (records)
//	cluster_shard_sessions_<shard>     gauge: tracked sessions
type ClusterRouterMetrics struct {
	reg *Registry

	Routed            *Counter
	Retried421        *Counter
	BreakerTrips      *Counter
	Failovers         *Counter
	ProxyErrors       *Counter
	Broadcasts        *Counter
	Migrations        *Counter
	MigrationFailures *Counter
	Rebalances        *Counter
	RingRebuilds      *Counter
	Shards            *Gauge

	// perShard holds a map[string]*Counter, swapped atomically on ring
	// rebuilds so in-flight requests never race the rebalance path.
	perShard atomic.Value
}

// NewClusterRouterMetrics wires the router-side series into reg.
func NewClusterRouterMetrics(reg *Registry) *ClusterRouterMetrics {
	c := &ClusterRouterMetrics{
		reg:               reg,
		Routed:            reg.Counter("cluster_requests_routed_total"),
		Retried421:        reg.Counter("cluster_retries_421_total"),
		BreakerTrips:      reg.Counter("cluster_breaker_trips_total"),
		Failovers:         reg.Counter("cluster_failovers_total"),
		ProxyErrors:       reg.Counter("cluster_proxy_errors_total"),
		Broadcasts:        reg.Counter("cluster_broadcasts_total"),
		Migrations:        reg.Counter("cluster_migrations_total"),
		MigrationFailures: reg.Counter("cluster_migration_failures_total"),
		Rebalances:        reg.Counter("cluster_rebalances_total"),
		RingRebuilds:      reg.Counter("cluster_ring_rebuilds_total"),
		Shards:            reg.Gauge("cluster_shards"),
	}
	c.perShard.Store(map[string]*Counter{})
	return c
}

// shardSuffix folds a shard ID into a metric-name suffix.
func shardSuffix(id string) string {
	return strings.NewReplacer(".", "_", "-", "_").Replace(id)
}

// RegisterShards (re)builds the per-shard counter set and updates the
// shard-count gauge. Call at construction and after every ring swap;
// counters for departed shards keep their totals (the registry is
// append-only) but stop being written.
func (c *ClusterRouterMetrics) RegisterShards(ids []string) {
	m := make(map[string]*Counter, len(ids))
	for _, id := range ids {
		m[id] = c.reg.Counter("cluster_routed_total_" + shardSuffix(id))
	}
	c.perShard.Store(m)
	c.Shards.Set(int64(len(ids)))
}

// ObserveRouted counts one forwarded request, globally and per shard.
func (c *ClusterRouterMetrics) ObserveRouted(shard string) {
	c.Routed.Inc()
	m, _ := c.perShard.Load().(map[string]*Counter)
	if ctr, ok := m[shard]; ok {
		ctr.Inc()
	}
}

// SetShardLag records one shard's replication lag gauge.
func (c *ClusterRouterMetrics) SetShardLag(shard string, lag uint64) {
	c.reg.Gauge("cluster_shard_lag_" + shardSuffix(shard)).Set(int64(lag))
}

// SetShardSessions records one shard's tracked-session gauge.
func (c *ClusterRouterMetrics) SetShardSessions(shard string, n int) {
	c.reg.Gauge("cluster_shard_sessions_" + shardSuffix(shard)).Set(int64(n))
}
