// Package trace records audited sessions as JSONL event streams and
// replays them later — against the same engine build for regression
// checking (every decision must reproduce), or against a modified
// auditor to see how its decisions would have differed on a real
// workload.
//
// Events are self-contained: queries carry their kind and index set,
// updates carry index and value, and outcomes carry the decision and
// (for answered queries) the released answer.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"queryaudit/internal/core"
	"queryaudit/internal/query"
)

// Event is one line of a trace.
type Event struct {
	// Type is "query" or "update".
	Type string `json:"type"`
	// Query fields.
	Kind    string  `json:"kind,omitempty"`
	Indices []int   `json:"indices,omitempty"`
	Denied  bool    `json:"denied,omitempty"`
	Answer  float64 `json:"answer,omitempty"`
	// Update fields.
	Index int     `json:"index,omitempty"`
	Value float64 `json:"value,omitempty"`
}

// Recorder wraps an engine, mirroring every interaction into a JSONL
// stream. It is not safe for concurrent use (wrap externally if the
// engine is shared).
type Recorder struct {
	eng *core.Engine
	enc *json.Encoder
}

// NewRecorder returns a recorder writing events to w.
func NewRecorder(eng *core.Engine, w io.Writer) *Recorder {
	return &Recorder{eng: eng, enc: json.NewEncoder(w)}
}

// Engine exposes the wrapped engine.
func (r *Recorder) Engine() *core.Engine { return r.eng }

// Ask forwards to the engine and records the outcome.
func (r *Recorder) Ask(q query.Query) (core.Response, error) {
	resp, err := r.eng.Ask(q)
	if err != nil {
		return resp, err // malformed queries are not part of the trace
	}
	ev := Event{Type: "query", Kind: q.Kind.String(), Indices: q.Set, Denied: resp.Denied}
	if !resp.Denied {
		ev.Answer = resp.Answer
	}
	if encErr := r.enc.Encode(ev); encErr != nil {
		return resp, fmt.Errorf("trace: %w", encErr)
	}
	return resp, nil
}

// Update forwards to the engine and records the modification.
func (r *Recorder) Update(i int, v float64) error {
	if err := r.eng.Update(i, v); err != nil {
		return err
	}
	if err := r.enc.Encode(Event{Type: "update", Index: i, Value: v}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// Report summarizes a replay.
type Report struct {
	// Queries and Updates count replayed events.
	Queries int
	Updates int
	// DecisionMismatches lists 0-based query positions whose
	// answer/deny outcome differed from the recording.
	DecisionMismatches []int
	// AnswerMismatches lists positions answered in both runs with
	// different values (expected when the dataset differs).
	AnswerMismatches []int
}

// Clean reports whether the replay reproduced every decision.
func (rep Report) Clean() bool { return len(rep.DecisionMismatches) == 0 }

// Replay re-drives a recorded session against eng, comparing outcomes.
func Replay(r io.Reader, eng *core.Engine) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	qpos := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return rep, fmt.Errorf("trace: line %d: %w", rep.Queries+rep.Updates+1, err)
		}
		switch ev.Type {
		case "query":
			kind, err := query.ParseKind(ev.Kind)
			if err != nil {
				return rep, fmt.Errorf("trace: %w", err)
			}
			resp, err := eng.Ask(query.New(kind, ev.Indices...))
			if err != nil {
				return rep, fmt.Errorf("trace: replaying query %d: %w", qpos, err)
			}
			if resp.Denied != ev.Denied {
				rep.DecisionMismatches = append(rep.DecisionMismatches, qpos)
			} else if !resp.Denied && resp.Answer != ev.Answer {
				rep.AnswerMismatches = append(rep.AnswerMismatches, qpos)
			}
			rep.Queries++
			qpos++
		case "update":
			if err := eng.Update(ev.Index, ev.Value); err != nil {
				return rep, fmt.Errorf("trace: replaying update: %w", err)
			}
			rep.Updates++
		default:
			return rep, fmt.Errorf("trace: unknown event type %q", ev.Type)
		}
	}
	return rep, sc.Err()
}
