package trace_test

import (
	"bytes"
	"fmt"

	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/trace"
)

// Example records a short session and replays it against a fresh engine
// over the same data: every decision and answer reproduces.
func Example() {
	build := func() *core.Engine {
		eng := core.NewEngine(dataset.FromValues([]float64{10, 20, 30}))
		eng.Use(sumfull.New(3), query.Sum)
		return eng
	}

	var buf bytes.Buffer
	rec := trace.NewRecorder(build(), &buf)
	rec.Ask(query.New(query.Sum, 0, 1, 2))
	rec.Ask(query.New(query.Sum, 1, 2)) // denied
	rec.Update(0, 15)
	rec.Ask(query.New(query.Sum, 0, 1))

	rep, _ := trace.Replay(bytes.NewReader(buf.Bytes()), build())
	fmt.Println(rep.Clean(), rep.Queries, rep.Updates)
	// Output:
	// true 3 1
}
