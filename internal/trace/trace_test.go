package trace

import (
	"bytes"
	"strings"
	"testing"

	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/core"
	"queryaudit/internal/dataset"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

func freshEngine(n int, seed int64) *core.Engine {
	ds := dataset.UniformDuplicateFree(randx.New(seed), n, 0, 1)
	eng := core.NewEngine(ds)
	eng.Use(sumfull.New(n), query.Sum)
	eng.Use(maxfull.New(n), query.Max)
	return eng
}

// TestRecordReplayClean: replaying a recorded session against an
// identical engine reproduces every decision and answer.
func TestRecordReplayClean(t *testing.T) {
	const n = 25
	var buf bytes.Buffer
	rec := NewRecorder(freshEngine(n, 1), &buf)
	rng := randx.New(2)
	for step := 0; step < 40; step++ {
		kind := query.Sum
		if step%3 == 0 {
			kind = query.Max
		}
		set := randx.SubsetSizeBetween(rng, n, 2, n)
		if _, err := rec.Ask(query.New(kind, set...)); err != nil {
			t.Fatal(err)
		}
		if step%10 == 9 {
			if err := rec.Update(rng.Intn(n), rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err := Replay(bytes.NewReader(buf.Bytes()), freshEngine(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || len(rep.AnswerMismatches) != 0 {
		t.Fatalf("identical replay not clean: %+v", rep)
	}
	if rep.Queries != 40 || rep.Updates != 4 {
		t.Fatalf("counts %+v", rep)
	}
}

// TestReplayDetectsDrift: replaying against a different dataset flags
// answer mismatches (decisions stay identical — they are simulatable,
// data-independent functions of the query history... unless answers
// steer the max synopsis; sums never mismatch decisions).
func TestReplayDetectsDrift(t *testing.T) {
	const n = 25
	var buf bytes.Buffer
	rec := NewRecorder(freshEngine(n, 1), &buf)
	rng := randx.New(2)
	for step := 0; step < 20; step++ {
		set := randx.SubsetSizeBetween(rng, n, 2, n)
		if _, err := rec.Ask(query.New(query.Sum, set...)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Replay(bytes.NewReader(buf.Bytes()), freshEngine(n, 99))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("sum decisions are data-independent; mismatches %+v", rep.DecisionMismatches)
	}
	if len(rep.AnswerMismatches) == 0 {
		t.Fatal("different data must produce answer mismatches")
	}
}

// TestReplayMalformed: garbage lines are reported, not paniced over.
func TestReplayMalformed(t *testing.T) {
	if _, err := Replay(strings.NewReader("{not json"), freshEngine(4, 1)); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Replay(strings.NewReader(`{"type":"teleport"}`), freshEngine(4, 1)); err == nil {
		t.Fatal("unknown event accepted")
	}
}
