package workload

import (
	"math/rand"
	"testing"

	"queryaudit/internal/query"
)

// TestUniformRandomBasics: nonempty sorted sets of the right kind.
func TestUniformRandomBasics(t *testing.T) {
	g := &UniformRandom{N: 12, Kind: query.Sum, Rng: rand.New(rand.NewSource(1))}
	for i := 0; i < 200; i++ {
		q := g.Next()
		if q.Kind != query.Sum || q.Set.Size() == 0 {
			t.Fatalf("bad query %v", q)
		}
		for _, idx := range q.Set {
			if idx < 0 || idx >= 12 {
				t.Fatalf("index out of range: %v", q.Set)
			}
		}
	}
	if g.Name() != "uniform-sum" {
		t.Errorf("name = %q", g.Name())
	}
}

// TestSizedRandomRespectsBounds.
func TestSizedRandomRespectsBounds(t *testing.T) {
	g := &SizedRandom{N: 30, MinSize: 5, MaxSize: 9, Kind: query.Max, Rng: rand.New(rand.NewSource(2))}
	for i := 0; i < 200; i++ {
		q := g.Next()
		if q.Set.Size() < 5 || q.Set.Size() > 9 {
			t.Fatalf("size %d outside [5,9]", q.Set.Size())
		}
	}
}

// TestRangeQueriesContiguity: 1-D ranges are contiguous with widths in
// the paper's 50–100 band.
func TestRangeQueriesContiguity(t *testing.T) {
	g := &RangeQueries{N: 500, MinWidth: 50, MaxWidth: 100, Kind: query.Sum, Rng: rand.New(rand.NewSource(3))}
	for i := 0; i < 200; i++ {
		q := g.Next()
		w := q.Set.Size()
		if w < 50 || w > 100 {
			t.Fatalf("width %d outside [50,100]", w)
		}
		for j := 1; j < len(q.Set); j++ {
			if q.Set[j] != q.Set[j-1]+1 {
				t.Fatalf("not contiguous: %v", q.Set[:5])
			}
		}
	}
}

// TestUpdateStreamPeriod: exactly one update per period, none when
// disabled.
func TestUpdateStreamPeriod(t *testing.T) {
	u := &UpdateStream{N: 10, Period: 10, Lo: 0, Hi: 1, Rng: rand.New(rand.NewSource(4))}
	due := 0
	for i := 0; i < 100; i++ {
		if idx, v, d := u.Tick(); d {
			due++
			if idx < 0 || idx >= 10 || v < 0 || v >= 1 {
				t.Fatalf("bad update (%d, %g)", idx, v)
			}
		}
	}
	if due != 10 {
		t.Fatalf("updates = %d, want 10", due)
	}
	off := &UpdateStream{N: 10, Period: 0, Rng: rand.New(rand.NewSource(5))}
	for i := 0; i < 50; i++ {
		if _, _, d := off.Tick(); d {
			t.Fatal("disabled stream produced an update")
		}
	}
}

// TestClusteredShape: clusters are index-contiguous-ish, at least 2
// elements, and centered spreads scale with Spread.
func TestClusteredShape(t *testing.T) {
	g := &Clustered{N: 200, Spread: 10, Kind: query.Sum, Rng: rand.New(rand.NewSource(6))}
	total := 0
	for i := 0; i < 300; i++ {
		q := g.Next()
		if q.Set.Size() < 2 {
			t.Fatalf("cluster too small: %v", q.Set)
		}
		// Contiguity: clusters are intervals by construction.
		for j := 1; j < len(q.Set); j++ {
			if q.Set[j] != q.Set[j-1]+1 {
				t.Fatalf("cluster not contiguous: %v", q.Set)
			}
		}
		total += q.Set.Size()
	}
	mean := float64(total) / 300
	if mean < 5 || mean > 60 {
		t.Fatalf("mean cluster size %.1f out of the expected band for spread 10", mean)
	}
}
