// Package workload generates the query and update streams of the
// Section 6 experiments: uniformly random sum/max/min queries, the
// 1-dimensional range sum queries of Figure 2 / Plot 3, and update
// streams interleaving modifications with queries.
package workload

import (
	"math/rand"

	"queryaudit/internal/query"
	"queryaudit/internal/randx"
)

// Generator produces a stream of queries.
type Generator interface {
	// Next returns the next query in the stream.
	Next() query.Query
	// Name identifies the workload in experiment output.
	Name() string
}

// UniformRandom draws each query set uniformly from all nonempty subsets
// of {0..n−1} — the paper's "random query" model for Theorem 6/7 and
// Figures 1–2.
type UniformRandom struct {
	N    int
	Kind query.Kind
	Rng  *rand.Rand //auditlint:allow rngshare generators are single-stream by construction, seeded once per experiment run
}

// Next implements Generator.
func (g *UniformRandom) Next() query.Query {
	return query.Query{Set: query.NewSet(randx.Subset(g.Rng, g.N)...), Kind: g.Kind}
}

// Name implements Generator.
func (g *UniformRandom) Name() string { return "uniform-" + g.Kind.String() }

// SizedRandom draws query sets of a size uniform in [MinSize, MaxSize].
type SizedRandom struct {
	N                int
	MinSize, MaxSize int
	Kind             query.Kind
	Rng              *rand.Rand //auditlint:allow rngshare generators are single-stream by construction, seeded once per experiment run
}

// Next implements Generator.
func (g *SizedRandom) Next() query.Query {
	s := randx.SubsetSizeBetween(g.Rng, g.N, g.MinSize, g.MaxSize)
	return query.Query{Set: query.NewSet(s...), Kind: g.Kind}
}

// Name implements Generator.
func (g *SizedRandom) Name() string { return "sized-" + g.Kind.String() }

// RangeQueries draws 1-D range queries over records sorted on a public
// attribute: each query selects a contiguous index range whose width is
// uniform in [MinWidth, MaxWidth] (50–100 in the paper's Plot 3).
type RangeQueries struct {
	N                  int
	MinWidth, MaxWidth int
	Kind               query.Kind
	Rng                *rand.Rand //auditlint:allow rngshare generators are single-stream by construction, seeded once per experiment run
}

// Next implements Generator.
func (g *RangeQueries) Next() query.Query {
	w := g.MinWidth
	if g.MaxWidth > g.MinWidth {
		w += g.Rng.Intn(g.MaxWidth - g.MinWidth + 1)
	}
	return query.Query{Set: query.NewSet(randx.Range(g.Rng, g.N, w)...), Kind: g.Kind}
}

// Name implements Generator.
func (g *RangeQueries) Name() string { return "range-" + g.Kind.String() }

// UpdateStream schedules a modification of a uniformly random record
// every Period queries (Figure 2 / Plot 2 modifies once per 10 queries).
type UpdateStream struct {
	N      int
	Period int
	Lo, Hi float64
	Rng    *rand.Rand //auditlint:allow rngshare generators are single-stream by construction, seeded once per experiment run
	step   int
}

// Tick advances the stream by one query and reports whether an update is
// due now, returning the record index and fresh value when so.
func (u *UpdateStream) Tick() (idx int, value float64, due bool) {
	u.step++
	if u.Period <= 0 || u.step%u.Period != 0 {
		return 0, 0, false
	}
	return u.Rng.Intn(u.N), u.Lo + u.Rng.Float64()*(u.Hi-u.Lo), true
}

// Clustered models correlated real-world interest: each query picks a
// random center record and includes nearby records (by index, i.e. by
// the public sort attribute) with geometrically decaying probability —
// the paper's conjecture is that such non-uniform workloads keep more
// utility than uniform ones.
type Clustered struct {
	N int
	// Spread is the expected one-sided reach of a cluster (≈ mean
	// geometric tail length).
	Spread int
	Kind   query.Kind
	Rng    *rand.Rand //auditlint:allow rngshare generators are single-stream by construction, seeded once per experiment run
}

// Next implements Generator.
func (g *Clustered) Next() query.Query {
	p := 1 / float64(g.Spread+1)
	for {
		center := g.Rng.Intn(g.N)
		var idx []int
		for i := center; i < g.N; i++ {
			if i > center && g.Rng.Float64() < p {
				break
			}
			idx = append(idx, i)
		}
		for i := center - 1; i >= 0; i-- {
			if g.Rng.Float64() < p {
				break
			}
			idx = append(idx, i)
		}
		if len(idx) >= 2 {
			return query.Query{Set: query.NewSet(idx...), Kind: g.Kind}
		}
	}
}

// Name implements Generator.
func (g *Clustered) Name() string { return "clustered-" + g.Kind.String() }
