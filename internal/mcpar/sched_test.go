package mcpar

import (
	"math/rand"
	"sync"
	"testing"
)

// The overshoot bound from the claim window: however samples land across
// the caller and the assist pool, at most Workers samples beyond the
// deterministic certificate point ever run.
func TestVoteOvershootBoundedByWorkers(t *testing.T) {
	sched := NewScheduler(4)
	defer sched.Close()
	for _, workers := range []int{1, 2, 4, 8} {
		for seed := int64(0); seed < 20; seed++ {
			out := Vote(Config{Workers: workers, Seed: seed, Sched: sched}, 50_000, 3,
				func() struct{} { return struct{}{} },
				func(_ int, rng *rand.Rand, _ struct{}) bool { return rng.Float64() < 0.9 })
			if !out.Exceeded {
				t.Fatalf("seed %d: 90%% unsafe run must deny", seed)
			}
			if out.Evaluated > out.CertPoint+out.Workers {
				t.Fatalf("workers=%d seed=%d: evaluated %d > certificate point %d + workers %d",
					workers, seed, out.Evaluated, out.CertPoint, out.Workers)
			}
			if out.Evaluated < out.CertPoint {
				t.Fatalf("workers=%d seed=%d: evaluated %d below certificate point %d",
					workers, seed, out.Evaluated, out.CertPoint)
			}
		}
	}
}

// CertPoint and Votes — not just the decision — must be bit-identical at
// every worker count: the frontier commits prefixes in index order, so
// the stop point is a pure function of the seed. Workers=1 is the
// sequential reference the parallel configurations must match exactly.
func TestVoteCertPointInvariantAcrossWorkers(t *testing.T) {
	sched := NewScheduler(4)
	defer sched.Close()
	for _, budget := range []int{16, 200, 3000} {
		for _, thr := range []float64{0.05, 0.3, 0.7} {
			barrier := DenyBarrier(budget, thr)
			for seed := int64(0); seed < 8; seed++ {
				var want Outcome
				for wi, workers := range []int{1, 2, 8} {
					out := Vote(Config{Workers: workers, Seed: seed, Sched: sched}, budget, barrier,
						func() struct{} { return struct{}{} },
						func(_ int, rng *rand.Rand, _ struct{}) bool { return rng.Float64() < 0.31 })
					if wi == 0 {
						want = out
						continue
					}
					if out.Exceeded != want.Exceeded || out.CertPoint != want.CertPoint || out.Votes != want.Votes {
						t.Fatalf("budget=%d thr=%g seed=%d workers=%d: (deny=%v cert=%d votes=%d), sequential (deny=%v cert=%d votes=%d)",
							budget, thr, seed, workers,
							out.Exceeded, out.CertPoint, out.Votes,
							want.Exceeded, want.CertPoint, want.Votes)
					}
				}
			}
		}
	}
}

// Many concurrent Vote runs multiplexed over one small scheduler — the
// serving shape of many analysts' sessions deciding at once — must each
// reach the same decision, certificate point and vote count as the same
// run executed alone and sequentially. Run under -race in CI.
func TestSchedulerConcurrentRunsDeterministic(t *testing.T) {
	sched := NewScheduler(3)
	defer sched.Close()
	const runs = 24
	const budget = 400
	barrier := DenyBarrier(budget, 0.3)
	sample := func(_ int, rng *rand.Rand, _ struct{}) bool { return rng.Float64() < 0.29 }

	want := make([]Outcome, runs)
	for i := range want {
		want[i] = Vote(Config{Workers: 1, Seed: int64(i)}, budget, barrier,
			func() struct{} { return struct{}{} }, sample)
	}

	var wg sync.WaitGroup
	got := make([]Outcome, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = Vote(Config{Workers: 4, Seed: int64(i), Sched: sched}, budget, barrier,
				func() struct{} { return struct{}{} }, sample)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if got[i].Exceeded != want[i].Exceeded || got[i].CertPoint != want[i].CertPoint || got[i].Votes != want[i].Votes {
			t.Fatalf("run %d diverged under concurrent scheduling: (deny=%v cert=%d votes=%d), want (deny=%v cert=%d votes=%d)",
				i, got[i].Exceeded, got[i].CertPoint, got[i].Votes,
				want[i].Exceeded, want[i].CertPoint, want[i].Votes)
		}
	}
}

// A closed scheduler refuses tokens; the run must still complete through
// its caller with the identical decision.
func TestVoteCompletesOnClosedScheduler(t *testing.T) {
	sched := NewScheduler(2)
	sched.Close()
	barrier := DenyBarrier(256, 0.3)
	ref := Vote(Config{Workers: 1, Seed: 9}, 256, barrier,
		func() struct{} { return struct{}{} },
		func(_ int, rng *rand.Rand, _ struct{}) bool { return rng.Float64() < 0.4 })
	out := Vote(Config{Workers: 8, Seed: 9, Sched: sched}, 256, barrier,
		func() struct{} { return struct{}{} },
		func(_ int, rng *rand.Rand, _ struct{}) bool { return rng.Float64() < 0.4 })
	if out.Exceeded != ref.Exceeded || out.CertPoint != ref.CertPoint || out.Votes != ref.Votes {
		t.Fatalf("closed-scheduler run diverged: %+v vs %+v", out, ref)
	}
}

// The adaptive sequential test must (a) stop earlier than the exact
// certificates when the unsafe fraction sits far from the barrier, and
// (b) remain a pure function of the seed — same stop point and decision
// at every worker count.
func TestVoteAdaptiveStopsEarlyAndDeterministically(t *testing.T) {
	sched := NewScheduler(4)
	defer sched.Close()
	const budget = 4096
	barrier := DenyBarrier(budget, 0.5)
	// Unsafe fraction ~0.1, far below the 0.5 barrier: the exact answer
	// certificate needs ~half the budget, the adaptive test a few dozen.
	sample := func(_ int, rng *rand.Rand, _ struct{}) bool { return rng.Float64() < 0.1 }

	exact := Vote(Config{Workers: 1, Seed: 7}, budget, barrier,
		func() struct{} { return struct{}{} }, sample)
	if exact.Adaptive {
		t.Fatal("alpha=0 run reported an adaptive stop")
	}

	var want Outcome
	for wi, workers := range []int{1, 2, 8} {
		out := Vote(Config{Workers: workers, Seed: 7, Sched: sched, AdaptiveAlpha: 0.05}, budget, barrier,
			func() struct{} { return struct{}{} }, sample)
		if !out.Adaptive {
			t.Fatalf("workers=%d: adaptive rule never fired (cert=%d)", workers, out.CertPoint)
		}
		if out.Exceeded {
			t.Fatalf("workers=%d: 10%% unsafe vs 50%% barrier must answer", workers)
		}
		if out.CertPoint >= exact.CertPoint {
			t.Fatalf("workers=%d: adaptive stop %d not earlier than exact certificate %d",
				workers, out.CertPoint, exact.CertPoint)
		}
		if wi == 0 {
			want = out
			continue
		}
		if out.CertPoint != want.CertPoint || out.Votes != want.Votes || out.Exceeded != want.Exceeded {
			t.Fatalf("workers=%d: adaptive stop diverged (cert=%d votes=%d) vs (cert=%d votes=%d)",
				workers, out.CertPoint, out.Votes, want.CertPoint, want.Votes)
		}
	}
}

// Lanes cap at Workers even when the scheduler could lend more hands, so
// newScratch (potentially expensive: walkers, buffers) runs a bounded
// number of times per decision.
func TestVoteLaneCountBounded(t *testing.T) {
	sched := NewScheduler(8)
	defer sched.Close()
	var mu sync.Mutex
	made := 0
	out := Vote(Config{Workers: 3, Seed: 2, Sched: sched}, 10_000, 10_000,
		func() struct{} {
			mu.Lock()
			made++
			mu.Unlock()
			return struct{}{}
		},
		func(_ int, rng *rand.Rand, _ struct{}) bool { return rng.Float64() < 0.5 })
	mu.Lock()
	defer mu.Unlock()
	if made > out.Workers {
		t.Fatalf("built %d scratches for a %d-worker decision", made, out.Workers)
	}
	if made == 0 {
		t.Fatal("no scratch was ever built")
	}
}
