package mcpar

// One Vote's shared state while its samples are in flight on the caller
// and (possibly) the scheduler's assist workers.
//
// # Deterministic certificates
//
// Sample verdicts commit into results[] by index, and a frontier sweeps
// the contiguous evaluated prefix in index order. Stopping rules are
// checked only at frontier positions — i.e. against the vote count of the
// prefix [0, m) — so the stop point (certPoint) and the decision are pure
// functions of the per-index verdicts, which are themselves pure
// functions of (seed, index). Worker count, scheduling, and commit order
// cannot change either. certPoint equals exactly the sample at which the
// old sequential loop stopped.
//
// # Bounded overshoot
//
// Claims are throttled to a window of `window` indices past the frontier
// (window = the run's worker cap). Every claimed index is < frontier +
// window at claim time, and the frontier freezes at certPoint, so
//
//	evaluated ≤ certPoint + window
//
// holds unconditionally — the bound the overshoot fix demands, replacing
// the old free-running dispenser whose overshoot grew with the scheduling
// gap between the stop flag's writer and its readers. A full window with
// an un-fired certificate always has at least one sample in flight (a
// committed prefix would have advanced the frontier), so blocking in
// claim() cannot deadlock: the in-flight commit broadcasts.

import (
	"math"
	"sync"
	"sync/atomic"
)

// adaptiveMinSamples is the smallest prefix the adaptive sequential test
// may stop at: below it the empirical variance estimate is noise.
const adaptiveMinSamples = 16

type run struct {
	budget  int
	barrier int
	window  int     // claim window == resolved worker cap
	chunk   int     // samples an assist evaluates per token
	alpha   float64 // adaptive error budget (0 = exact certificates only)

	// eval evaluates sample i: acquire a lane, reseed its stream to
	// (seed, i), run the sample, commit the verdict. Set by Vote; closes
	// over the generic lane pool.
	eval func(i int)

	mu   sync.Mutex
	cond sync.Cond // signals frontier/claimability changes; init by newRun

	next       int // claim dispenser
	inflight   int // claimed, not yet committed
	evaluated  int // committed samples
	frontier   int // contiguous committed prefix length
	prefixVote int // unsafe verdicts inside [0, frontier)
	results    []uint8
	certPoint  int // deterministic stop point, -1 until a rule fires
	deny       bool
	adaptive   bool // stop came from the adaptive test, not an exact cert

	done     chan struct{}
	assisted atomic.Int64 // samples evaluated by pool workers
}

func newRun(budget, barrier, window, chunk int, alpha float64) *run {
	r := &run{
		budget:    budget,
		barrier:   barrier,
		window:    window,
		chunk:     chunk,
		alpha:     alpha,
		results:   make([]uint8, budget),
		certPoint: -1,
		done:      make(chan struct{}),
	}
	r.cond.L = &r.mu
	return r
}

// work claims and evaluates samples until the run stops or, when limit is
// positive, until limit samples were evaluated by this call. It returns
// the number evaluated. Shared by the deciding goroutine (limit 0) and
// the scheduler's assists (limit = chunk). Assisted samples are tallied
// before their commit so the count is complete when the run's done
// channel closes.
func (r *run) work(limit int) int {
	n := 0
	for limit <= 0 || n < limit {
		i, ok := r.claim()
		if !ok {
			break
		}
		if limit > 0 {
			r.assisted.Add(1)
		}
		r.eval(i)
		n++
	}
	return n
}

// claim returns the next sample index, blocking while the claim window is
// full. ok is false once the run has stopped or the budget is exhausted.
func (r *run) claim() (i int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.certPoint >= 0 || r.next >= r.budget {
			return 0, false
		}
		if r.next < r.frontier+r.window {
			i = r.next
			r.next++
			r.inflight++
			return i, true
		}
		r.cond.Wait()
	}
}

// claimable reports whether unclaimed samples remain — whether a
// scheduler token for this run is still worth re-enqueueing.
func (r *run) claimable() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.certPoint < 0 && r.next < r.budget
}

// commit records sample i's verdict, advances the contiguous frontier,
// and applies the stopping rules at each newly committed prefix length.
// The commit that both sees a fired rule and drains the last in-flight
// sample completes the run.
func (r *run) commit(i int, unsafe bool) {
	v := uint8(1)
	if unsafe {
		v = 2
	}
	r.mu.Lock()
	r.results[i] = v
	r.evaluated++
	r.inflight--
	for r.certPoint < 0 && r.frontier < r.budget && r.results[r.frontier] != 0 {
		if r.results[r.frontier] == 2 {
			r.prefixVote++
		}
		r.frontier++
		if deny, adaptive, stop := r.ruleAt(r.frontier, r.prefixVote); stop {
			r.certPoint = r.frontier
			r.deny = deny
			r.adaptive = adaptive
		}
	}
	finished := r.certPoint >= 0 && r.inflight == 0
	r.cond.Broadcast()
	r.mu.Unlock()
	if finished {
		close(r.done)
	}
}

// ruleAt evaluates the stopping rules for the prefix [0, m) with votes
// unsafe verdicts. The two exact certificates prove the full-budget
// decision outright; the optional adaptive rule (alpha > 0) is an
// empirical-Bernstein sequential test that stops once the full-budget
// unsafe fraction is pinned on one side of the barrier with confidence
// 1-alpha. All three depend only on (m, votes), so the stop point is
// invariant under worker count and scheduling.
func (r *run) ruleAt(m, votes int) (deny, adaptive, stop bool) {
	if votes > r.barrier {
		return true, false, true
	}
	if votes+(r.budget-m) <= r.barrier {
		return false, false, true
	}
	if r.alpha > 0 && m >= adaptiveMinSamples && m < r.budget {
		fm := float64(m)
		phat := float64(votes) / fm
		// Union bound over checkpoints: alpha_m = alpha / (m·(m+1))
		// sums below alpha over all m, so the whole sequential test is
		// wrong with probability at most alpha.
		l := math.Log(3 * fm * (fm + 1) / r.alpha)
		eps := math.Sqrt(2*phat*(1-phat)*l/fm) + 3*l/fm
		// tau separates answer (final votes ≤ barrier) from deny
		// (final votes ≥ barrier+1) as fractions of the budget.
		tau := (float64(r.barrier) + 0.5) / float64(r.budget)
		if phat-eps > tau {
			return true, true, true
		}
		if phat+eps < tau {
			return false, true, true
		}
	}
	return false, false, false
}
