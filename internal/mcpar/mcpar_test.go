package mcpar

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"queryaudit/internal/randx"
)

// fullCount replays the per-sample streams sequentially with no early
// exit — the ground-truth U(seed) every Vote configuration must agree
// with.
func fullCount(seed int64, budget int, sample func(i int, rng *rand.Rand) bool) int {
	votes := 0
	for i := 0; i < budget; i++ {
		if sample(i, randx.Stream(seed, uint64(i))) {
			votes++
		}
	}
	return votes
}

func TestDenyBarrierMatchesFloatComparison(t *testing.T) {
	thresholds := []float64{0, 0.001, 0.01, 1.0 / 3, 0.05, 0.5, 0.9999, 1}
	for _, thr := range thresholds {
		for budget := 1; budget <= 200; budget++ {
			barrier := DenyBarrier(budget, thr)
			for votes := 0; votes <= budget; votes++ {
				histDeny := float64(votes)/float64(budget) > thr
				barDeny := votes > barrier
				if histDeny != barDeny {
					t.Fatalf("budget=%d thr=%g votes=%d: historical=%v barrier(%d)=%v",
						budget, thr, votes, histDeny, barrier, barDeny)
				}
			}
		}
	}
}

// The decision must be a pure function of the seed — identical at every
// worker count, and identical to the no-early-exit ground truth.
func TestVoteDecisionInvariantAcrossWorkers(t *testing.T) {
	sample := func(i int, rng *rand.Rand) bool {
		// A verdict depending on both the index and the stream exercises
		// the counter-based keying.
		return rng.Float64() < 0.3 || (i%17 == 0 && rng.Intn(4) == 0)
	}
	for _, budget := range []int{1, 7, 64, 200} {
		for _, thr := range []float64{0.1, 0.3, 0.5} {
			barrier := DenyBarrier(budget, thr)
			for seed := int64(0); seed < 10; seed++ {
				want := fullCount(seed, budget, sample) > barrier
				for _, workers := range []int{1, 2, 3, 8} {
					out := Vote(Config{Workers: workers, Seed: seed}, budget, barrier,
						func() struct{} { return struct{}{} },
						func(i int, rng *rand.Rand, _ struct{}) bool { return sample(i, rng) })
					if out.Exceeded != want {
						t.Fatalf("budget=%d thr=%g seed=%d workers=%d: Exceeded=%v want %v",
							budget, thr, seed, workers, out.Exceeded, want)
					}
					if out.Workers < 1 {
						t.Fatalf("resolved workers %d", out.Workers)
					}
				}
			}
		}
	}
}

func TestVoteEarlyExitOnDeny(t *testing.T) {
	const budget = 10_000
	out := Vote(Config{Workers: 1, Seed: 1}, budget, 3,
		func() struct{} { return struct{}{} },
		func(int, *rand.Rand, struct{}) bool { return true })
	if !out.Exceeded {
		t.Fatal("all-unsafe run must deny")
	}
	if out.Evaluated != 4 {
		t.Fatalf("sequential deny exit after barrier+1 samples: evaluated %d, want 4", out.Evaluated)
	}
}

func TestVoteEarlyExitOnProvableAnswer(t *testing.T) {
	const budget = 10_000
	// barrier = budget-1: answering is certain once one safe sample makes
	// votes ≤ barrier unreachable... use a high barrier so the answer
	// certificate fires almost immediately.
	out := Vote(Config{Workers: 1, Seed: 1}, budget, budget-1,
		func() struct{} { return struct{}{} },
		func(int, *rand.Rand, struct{}) bool { return false })
	if out.Exceeded {
		t.Fatal("all-safe run must answer")
	}
	if out.Evaluated >= budget {
		t.Fatalf("answer certificate never fired: evaluated %d of %d", out.Evaluated, budget)
	}
}

func TestVoteParallelEarlyExitStops(t *testing.T) {
	const budget = 100_000
	out := Vote(Config{Workers: 8, Seed: 1}, budget, 3,
		func() struct{} { return struct{}{} },
		func(int, *rand.Rand, struct{}) bool { return true })
	if !out.Exceeded {
		t.Fatal("all-unsafe run must deny")
	}
	// Scheduling may let each worker land a few extra samples, but the
	// stop flag must keep the total nowhere near the budget.
	if out.Evaluated > budget/10 {
		t.Fatalf("early exit ineffective: evaluated %d of %d", out.Evaluated, budget)
	}
}

// Each worker must own a private rng and a private scratch: the engine's
// isolation contract, enforced under -race by CI. The test also checks
// the pairing directly — a scratch value never sees two different rngs,
// and two scratches never share one rng.
func TestVoteNoSharedRNGAcrossWorkers(t *testing.T) {
	type scratch struct{ rng *rand.Rand }
	var (
		mu     sync.Mutex
		owners = map[*rand.Rand]*scratch{}
	)
	const workers = 8
	out := Vote(Config{Workers: workers, Seed: 5}, 4096, 4096,
		func() *scratch { return &scratch{} },
		func(_ int, rng *rand.Rand, sc *scratch) bool {
			if sc.rng == nil {
				sc.rng = rng
				mu.Lock()
				if prev, ok := owners[rng]; ok && prev != sc {
					mu.Unlock()
					t.Error("rng shared across two scratches")
					return false
				}
				owners[rng] = sc
				mu.Unlock()
			} else if sc.rng != rng {
				t.Error("worker's rng changed between samples")
			}
			return rng.Float64() < 0.5
		})
	if out.Workers != workers {
		t.Fatalf("resolved %d workers, want %d", out.Workers, workers)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(owners) == 0 || len(owners) > workers {
		t.Fatalf("saw %d distinct rngs for %d workers", len(owners), workers)
	}
}

type captureObserver struct {
	budget, evaluated, votes, workers int
	wall, busy                        time.Duration
	calls                             int
}

func (c *captureObserver) ObserveMC(budget, evaluated, votes, workers int, wall, busy time.Duration) {
	c.budget, c.evaluated, c.votes, c.workers = budget, evaluated, votes, workers
	c.wall, c.busy = wall, busy
	c.calls++
}

func TestVoteObserverAccounting(t *testing.T) {
	obs := &captureObserver{}
	out := Vote(Config{Workers: 2, Seed: 3, Observer: obs}, 64, 64,
		func() struct{} { return struct{}{} },
		func(i int, _ *rand.Rand, _ struct{}) bool { return i%2 == 0 })
	if obs.calls != 1 {
		t.Fatalf("observer called %d times", obs.calls)
	}
	if obs.budget != 64 || obs.evaluated != out.Evaluated || obs.votes != out.Votes || obs.workers != out.Workers {
		t.Fatalf("observer saw (%d,%d,%d,%d), outcome was %+v",
			obs.budget, obs.evaluated, obs.votes, obs.workers, out)
	}
	if obs.busy <= 0 {
		t.Fatal("busy time not recorded")
	}
}

func TestResolveWorkers(t *testing.T) {
	if w := (Config{Workers: 16}).resolveWorkers(4); w != 4 {
		t.Fatalf("pool must not exceed budget: got %d", w)
	}
	if w := (Config{Workers: -3}).resolveWorkers(100); w < 1 {
		t.Fatalf("negative knob resolved to %d", w)
	}
	if w := (Config{}).resolveWorkers(1_000_000); w < 1 {
		t.Fatalf("default knob resolved to %d", w)
	}
}
