// Package mcpar is the shared parallel Monte Carlo decision engine behind
// the probabilistic simulatable auditors (Section 3). Every decision of
// maxprob, maxminprob and sumprob reduces to the same shape: run up to
// `budget` independent sample evaluations, count how many vote "unsafe",
// and deny iff the unsafe fraction exceeds the δ/(2T) threshold. This
// package fans that budget across a bounded worker pool while keeping the
// decision bit-identical at ANY worker count, including 1.
//
// # Determinism
//
// Sample i draws all of its randomness from a counter-based stream keyed
// by (seed, i) — randx.Stream — so its verdict is a pure function of the
// sample index, never of scheduling. The full-budget unsafe count is
// therefore a deterministic value U(seed), and the decision U > barrier is
// invariant under the worker count and under the dispatch order.
//
// # Early exit
//
// Votes only accumulate, so partial counts yield sound certificates about
// the full-budget outcome:
//
//   - votes > barrier            ⇒ U > barrier (deny), stop sampling;
//   - votes + remaining ≤ barrier ⇒ U ≤ barrier (answer), stop sampling.
//
// Either certificate proves the decision the full budget would have made,
// so early exit never changes a decision — it only skips samples whose
// verdicts cannot matter. The number of samples actually evaluated MAY
// vary with scheduling (a fast worker can land one more sample before the
// stop flag propagates); only the decision is scheduling-invariant.
//
// # Worker isolation
//
// Each worker owns a private rand.Rand over a reseedable splitmix source
// and a private scratch value, so the hot path shares nothing but three
// atomics (the index dispenser, the vote count, the evaluated count).
// internal/server's CI runs the auditor tests under -race to enforce this.
package mcpar

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"queryaudit/internal/randx"
)

// Config selects the worker pool and the random seed of one Vote run.
type Config struct {
	// Workers is the pool size; 0 means runtime.GOMAXPROCS(0), and 1
	// forces the sequential path (same decisions, no goroutines).
	Workers int
	// Seed keys the per-sample random streams. Two runs with the same
	// seed, budget and sample function reach the same decision at any
	// worker count.
	Seed int64
	// Observer, when non-nil, receives one report per Vote run.
	Observer Observer
}

// Observer receives per-decision Monte Carlo accounting — sample budget
// vs samples actually evaluated (early-exit savings) and wall vs busy
// time (parallel speedup). internal/metrics.MCCollector implements it.
type Observer interface {
	ObserveMC(budget, evaluated, votes, workers int, wall, busy time.Duration)
}

// Outcome reports one Vote run.
type Outcome struct {
	// Budget is the sample budget requested.
	Budget int
	// Evaluated is how many samples actually ran (≤ Budget on early exit).
	Evaluated int
	// Votes counts "unsafe" verdicts among the evaluated samples.
	Votes int
	// Workers is the resolved pool size.
	Workers int
	// Exceeded reports the decision: the full-budget vote count provably
	// exceeds the barrier (deny) or provably cannot (answer).
	Exceeded bool
	// busy is the summed per-worker time inside the sample loop;
	// observers receive it via ObserveMC.
	busy time.Duration
}

// resolveWorkers maps the Workers knob onto a concrete pool size.
func (c Config) resolveWorkers(budget int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > budget {
		w = budget
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DenyBarrier returns the largest vote count k such that k out of budget
// does NOT exceed threshold under the auditors' historical float
// comparison float64(k)/float64(budget) > threshold. A decision denies
// iff votes > DenyBarrier(budget, threshold).
func DenyBarrier(budget int, threshold float64) int {
	if budget <= 0 {
		return 0
	}
	k := int(threshold * float64(budget))
	if k > budget {
		k = budget
	}
	for k < budget && float64(k+1)/float64(budget) <= threshold {
		k++
	}
	for k > 0 && float64(k)/float64(budget) > threshold {
		k--
	}
	return k
}

// Vote runs sample(i, rng, scratch) for i ∈ [0, budget), counting true
// returns as unsafe votes, and reports whether the full-budget vote count
// exceeds barrier. Each sample's rng is the (cfg.Seed, i) stream; scratch
// is per-worker state from newScratch (called once per worker; may build
// reusable buffers). sample must not touch anything mutable outside its
// scratch — shared inputs (the synopsis, the query) are read-only.
func Vote[S any](cfg Config, budget, barrier int, newScratch func() S, sample func(i int, rng *rand.Rand, scratch S) bool) Outcome {
	workers := cfg.resolveWorkers(budget)
	start := time.Now() //auditlint:allow detrand latency metric stamp, never a decision input
	var out Outcome
	if workers <= 1 {
		out = voteSequential(cfg, budget, barrier, newScratch, sample)
	} else {
		out = voteParallel(cfg, budget, barrier, workers, newScratch, sample)
	}
	out.Budget = budget
	out.Workers = workers
	out.Exceeded = out.Votes > barrier
	if cfg.Observer != nil {
		wall := time.Since(start) //auditlint:allow detrand latency metric stamp, never a decision input
		busy := out.busy
		if busy <= 0 {
			busy = wall
		}
		cfg.Observer.ObserveMC(budget, out.Evaluated, out.Votes, workers, wall, busy)
	}
	return out
}

func voteSequential[S any](cfg Config, budget, barrier int, newScratch func() S, sample func(i int, rng *rand.Rand, scratch S) bool) Outcome {
	src := randx.NewSplitMix(cfg.Seed, 0)
	rng := rand.New(src)
	scratch := newScratch()
	begin := time.Now() //auditlint:allow detrand latency metric stamp, never a decision input
	votes, evaluated := 0, 0
	for i := 0; i < budget; i++ {
		src.Reseed(cfg.Seed, uint64(i))
		if sample(i, rng, scratch) {
			votes++
		}
		evaluated++
		if votes > barrier || votes+(budget-evaluated) <= barrier {
			break
		}
	}
	return Outcome{Evaluated: evaluated, Votes: votes, busy: time.Since(begin)} //auditlint:allow detrand latency metric stamp, never a decision input
}

func voteParallel[S any](cfg Config, budget, barrier, workers int, newScratch func() S, sample func(i int, rng *rand.Rand, scratch S) bool) Outcome {
	var (
		next      atomic.Int64 // index dispenser
		votes     atomic.Int64
		evaluated atomic.Int64
		stop      atomic.Bool
		busy      atomic.Int64 // summed worker nanoseconds
		wg        sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			src := randx.NewSplitMix(cfg.Seed, 0)
			rng := rand.New(src)
			scratch := newScratch()
			begin := time.Now() //auditlint:allow detrand latency metric stamp, never a decision input
			for !stop.Load() {
				i := next.Add(1) - 1
				if i >= int64(budget) {
					break
				}
				src.Reseed(cfg.Seed, uint64(i))
				unsafe := sample(int(i), rng, scratch)
				// Order matters for the certificates: publish the vote
				// BEFORE the evaluated count, and read votes after, so a
				// vote can never be missing from v for a sample already
				// counted in ev (which would let the answer certificate
				// fire with an unsafe vote still in flight).
				if unsafe {
					votes.Add(1)
				}
				ev := evaluated.Add(1)
				v := votes.Load()
				// Certificates (see package doc): either one proves the
				// full-budget decision, so stopping cannot change it.
				if v > int64(barrier) || v+(int64(budget)-ev) <= int64(barrier) {
					stop.Store(true)
					break
				}
			}
			busy.Add(int64(time.Since(begin))) //auditlint:allow detrand latency metric stamp, never a decision input
		}()
	}
	wg.Wait()
	return Outcome{
		Evaluated: int(evaluated.Load()),
		Votes:     int(votes.Load()),
		busy:      time.Duration(busy.Load()),
	}
}
