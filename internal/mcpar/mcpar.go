// Package mcpar is the shared parallel Monte Carlo decision engine behind
// the probabilistic simulatable auditors (Section 3). Every decision of
// maxprob, maxminprob and sumprob reduces to the same shape: run up to
// `budget` independent sample evaluations, count how many vote "unsafe",
// and deny iff the unsafe fraction exceeds the δ/(2T) threshold. This
// package schedules that budget — across the caller and a process-wide
// assist pool shared by ALL concurrent decisions (see Scheduler) — while
// keeping the decision bit-identical at ANY worker count, including 1.
//
// # Determinism
//
// Sample i draws all of its randomness from a counter-based stream keyed
// by (seed, i) — randx.Stream — so its verdict is a pure function of the
// sample index, never of scheduling. Verdicts commit into a per-index
// result table and every stopping rule is evaluated only at contiguous
// prefixes of it, in index order (see run), so the decision, the vote
// count, and the certificate point are all deterministic values of the
// seed: identical at every worker count and under any interleaving with
// other analysts' decisions.
//
// # Early exit
//
// Votes only accumulate, so prefix counts yield sound certificates about
// the full-budget outcome:
//
//   - votes > barrier            ⇒ U > barrier (deny), stop sampling;
//   - votes + remaining ≤ barrier ⇒ U ≤ barrier (answer), stop sampling.
//
// Either certificate proves the decision the full budget would have made,
// so early exit never changes a decision. With Config.AdaptiveAlpha > 0 a
// third, variance-aware rule joins them: an empirical-Bernstein
// sequential test that stops once the full-budget unsafe fraction is
// pinned on one side of the barrier with confidence 1-alpha. It can save
// most of the budget when the unsafe fraction is far from the threshold,
// at the cost of a ≤ alpha chance of deciding differently from the full
// budget — still deterministically: the test reads only prefix counts,
// so a given seed stops at the same point at every worker count.
//
// The number of samples actually evaluated MAY exceed the certificate
// point — workers can have samples in flight when the rule fires — but
// the claim window bounds the overshoot: evaluated ≤ CertPoint + Workers.
//
// # Worker isolation
//
// Samples run on "lanes": paired (source, rand.Rand, scratch) pooled per
// run, at most one per worker, never shared between two in-flight
// samples. The source is reseeded to (seed, i) before sample i, so lanes
// affect only allocation reuse, never randomness. CI runs the auditor
// tests under -race to enforce the isolation.
package mcpar

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"queryaudit/internal/randx"
)

// Config selects the scheduling and the random seed of one Vote run.
type Config struct {
	// Workers caps this decision's parallelism; 0 means
	// runtime.GOMAXPROCS(0), and 1 forces the fully sequential inline
	// path (same decisions, no goroutines, no scheduler).
	Workers int
	// Seed keys the per-sample random streams. Two runs with the same
	// seed, budget and sample function reach the same decision at any
	// worker count.
	Seed int64
	// Observer, when non-nil, receives one report per Vote run.
	Observer Observer
	// Sched is the assist pool to draw spare capacity from; nil selects
	// the process-wide Default(). The pool is shared by all concurrent
	// decisions — Workers only caps how much of it one decision may use.
	Sched *Scheduler
	// AdaptiveAlpha, when positive, arms the adaptive sequential test
	// (see package doc): stop as soon as the decision is pinned with
	// confidence 1-AdaptiveAlpha. Zero keeps the exact certificates only,
	// which never change a decision.
	AdaptiveAlpha float64
}

// Observer receives per-decision Monte Carlo accounting — sample budget
// vs samples actually evaluated (early-exit savings) and wall vs busy
// time (parallel speedup). internal/metrics.MCCollector implements it.
type Observer interface {
	ObserveMC(budget, evaluated, votes, workers int, wall, busy time.Duration)
}

// Outcome reports one Vote run.
type Outcome struct {
	// Budget is the sample budget requested.
	Budget int
	// Evaluated is how many samples actually ran. It may vary with
	// scheduling but is bounded: CertPoint ≤ Evaluated ≤ CertPoint+Workers.
	Evaluated int
	// Votes counts "unsafe" verdicts among the first CertPoint samples —
	// the prefix the decision is taken on. Deterministic at any worker
	// count, unlike Evaluated.
	Votes int
	// Workers is the resolved per-decision cap.
	Workers int
	// Exceeded reports the decision: deny (the unsafe count provably — or,
	// under the adaptive rule, confidently — exceeds the barrier) versus
	// answer.
	Exceeded bool
	// CertPoint is the deterministic sample count at which a stopping
	// rule fired (== Budget when none fired early). Identical at every
	// worker count, and identical to the sequential loop's stop point.
	CertPoint int
	// Adaptive reports that the stop came from the adaptive sequential
	// test rather than an exact certificate.
	Adaptive bool
	// busy is the summed per-worker time inside the sample loop;
	// observers receive it via ObserveMC.
	busy time.Duration
}

// resolveWorkers maps the Workers knob onto a concrete pool size.
func (c Config) resolveWorkers(budget int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > budget {
		w = budget
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DenyBarrier returns the largest vote count k such that k out of budget
// does NOT exceed threshold under the auditors' historical float
// comparison float64(k)/float64(budget) > threshold. A decision denies
// iff votes > DenyBarrier(budget, threshold).
func DenyBarrier(budget int, threshold float64) int {
	if budget <= 0 {
		return 0
	}
	k := int(threshold * float64(budget))
	if k > budget {
		k = budget
	}
	for k < budget && float64(k+1)/float64(budget) <= threshold {
		k++
	}
	for k > 0 && float64(k)/float64(budget) > threshold {
		k--
	}
	return k
}

// chunkFor sizes the assist work quantum: small enough that a token
// cycles back through the queue often (fairness across concurrent
// decisions), large enough to amortize the queue round-trip.
func chunkFor(budget, workers int) int {
	c := budget / (4 * workers)
	if c < 1 {
		c = 1
	}
	if c > 64 {
		c = 64
	}
	return c
}

// lane pairs one rand.Rand (over a reseedable splitmix source) with one
// scratch value. A lane serves one in-flight sample at a time; the pool
// hands it to whichever claimant runs the next sample. Reseeding before
// every sample makes lane identity irrelevant to randomness — it only
// carries allocation reuse.
type lane[S any] struct {
	src *randx.SplitMix
	// rng is confined to the lane: exactly one in-flight sample holds a
	// lane at any time (taken from and returned to a buffered channel).
	rng     *rand.Rand //auditlint:allow rngshare lane is held by exactly one in-flight sample at a time via the lanes channel
	scratch S
}

// Vote runs sample(i, rng, scratch) for i ∈ [0, budget), counting true
// returns as unsafe votes, and reports whether the full-budget vote count
// exceeds barrier. Each sample's rng is the (cfg.Seed, i) stream; scratch
// is per-lane state from newScratch (at most Workers lanes; may build
// reusable buffers). sample must not touch anything mutable outside its
// scratch — shared inputs (the synopsis, the query) are read-only.
//
// The calling goroutine always participates: with Workers == 1 the whole
// run is inline and allocation-light, with Workers > 1 up to Workers-1
// work tokens are offered to the scheduler and the caller races the
// assists for the remaining samples.
func Vote[S any](cfg Config, budget, barrier int, newScratch func() S, sample func(i int, rng *rand.Rand, scratch S) bool) Outcome {
	workers := cfg.resolveWorkers(budget)
	start := time.Now() //auditlint:allow detrand latency metric stamp, never a decision input
	if budget <= 0 {
		out := Outcome{Workers: workers}
		if cfg.Observer != nil {
			wall := time.Since(start) //auditlint:allow detrand latency metric stamp, never a decision input
			cfg.Observer.ObserveMC(0, 0, 0, workers, wall, wall)
		}
		return out
	}

	r := newRun(budget, barrier, workers, chunkFor(budget, workers), cfg.AdaptiveAlpha)
	lanes := make(chan *lane[S], workers)
	var created int32
	var busy atomic.Int64
	r.eval = func(i int) {
		var l *lane[S]
		select {
		case l = <-lanes:
		default:
			if int(atomic.AddInt32(&created, 1)) <= workers {
				src := randx.NewSplitMix(cfg.Seed, uint64(i))
				l = &lane[S]{src: src, rng: rand.New(src), scratch: newScratch()}
			} else {
				l = <-lanes
			}
		}
		l.src.Reseed(cfg.Seed, uint64(i))
		begin := time.Now() //auditlint:allow detrand latency metric stamp, never a decision input
		unsafe := sample(i, l.rng, l.scratch)
		busy.Add(int64(time.Since(begin))) //auditlint:allow detrand latency metric stamp, never a decision input
		lanes <- l
		r.commit(i, unsafe)
	}

	sched := cfg.Sched
	if sched == nil {
		sched = Default()
	}
	tokens := 0
	if workers > 1 {
		tokens = sched.offer(r, workers-1)
	}
	callerRan := r.work(0)
	<-r.done

	r.mu.Lock()
	out := Outcome{
		Budget:    budget,
		Evaluated: r.evaluated,
		Votes:     r.prefixVote,
		Workers:   workers,
		Exceeded:  r.deny,
		CertPoint: r.certPoint,
		Adaptive:  r.adaptive,
		busy:      time.Duration(busy.Load()),
	}
	r.mu.Unlock()

	if tokens > 0 {
		sched.observe(tokens, int(r.assisted.Load()), callerRan)
	}
	if cfg.Observer != nil {
		wall := time.Since(start) //auditlint:allow detrand latency metric stamp, never a decision input
		b := out.busy
		if b <= 0 {
			b = wall
		}
		cfg.Observer.ObserveMC(budget, out.Evaluated, out.Votes, workers, wall, b)
	}
	return out
}
