package mcpar

// The decision scheduler: one bounded pool of assist workers multiplexing
// every concurrent Vote run in the process, replacing the per-decision
// goroutine fan-out that PR 2 shipped. The old design paid a full pool
// spin-up per decision and could not overlap two analysts' decisions —
// with S sessions each capped at W workers it wanted S·W goroutines while
// the machine has NumCPU cores. Here the pool is sized once for the
// machine and decisions *share* it: a Vote enqueues up to cap-1 work
// tokens and then participates in its own run from the calling goroutine,
// so a decision always makes progress even when the pool is saturated by
// other analysts, and aggregate throughput is bounded by the pool size
// rather than by per-decision latency.
//
// A token is a claim on one bounded chunk of a run's samples. Workers
// dequeue a token, evaluate up to chunk samples of that run, and — if the
// run still has claimable samples — re-enqueue the token behind every
// other waiting run. That round-robin keeps one slow decision (sumprob's
// polytope chains) from starving the cheap ones (maxprob) behind it.

import (
	"runtime"
	"sync"
)

// SchedObserver receives one report per scheduler-assisted Vote run.
// internal/metrics.SchedCollector implements it.
type SchedObserver interface {
	// ObserveSchedRun reports how a run's samples were split between the
	// pool (assisted) and the deciding goroutine itself (caller), and how
	// many work tokens the run enqueued.
	ObserveSchedRun(tokens, assisted, caller int)
}

// Scheduler is a shared assist pool. The zero value is not usable; build
// one with NewScheduler or use the process-wide Default.
type Scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*run // FIFO of work tokens
	closed bool
	size   int
	wg     sync.WaitGroup
	obs    SchedObserver
}

// NewScheduler starts a pool of size assist workers (0 or negative means
// runtime.GOMAXPROCS(0)). Size bounds how many samples the pool can
// evaluate concurrently ACROSS all decisions; each decision's own cap is
// Config.Workers. A size-0 pool is impossible — callers wanting fully
// sequential decisions set Config.Workers to 1, which never enqueues
// tokens at all.
func NewScheduler(size int) *Scheduler {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{size: size}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(size)
	for i := 0; i < size; i++ {
		go s.worker()
	}
	return s
}

// SetObserver installs the per-run accounting hook (nil disables).
// Install before the scheduler serves decisions.
func (s *Scheduler) SetObserver(o SchedObserver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = o
}

// Size returns the assist-pool size.
func (s *Scheduler) Size() int { return s.size }

// Close drains the pool. Runs already enqueued finish through their
// callers (a Vote never depends on the pool for progress); new offers are
// refused. Close is for tests and orderly shutdown — the package Default
// is never closed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.queue = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// offer enqueues n work tokens for r and reports how many were accepted
// (0 when the pool is closed). Tokens are hints, not obligations: a run
// completes through its caller even if every token is dropped.
func (s *Scheduler) offer(r *run, n int) int {
	if s == nil || n <= 0 {
		return 0
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	for i := 0; i < n; i++ {
		s.queue = append(s.queue, r)
	}
	for i := 0; i < n; i++ {
		s.cond.Signal()
	}
	s.mu.Unlock()
	return n
}

// worker is the assist loop: dequeue a token, evaluate one chunk of that
// run, put the token back if the run still has claimable samples.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		r := s.queue[0]
		s.queue[0] = nil
		s.queue = s.queue[1:]
		s.mu.Unlock()
		r.work(r.chunk)
		if r.claimable() {
			s.offer(r, 1)
		}
	}
}

// observe reports a finished run to the observer, if any.
func (s *Scheduler) observe(tokens, assisted, caller int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	obs := s.obs
	s.mu.Unlock()
	if obs != nil {
		obs.ObserveSchedRun(tokens, assisted, caller)
	}
}

var (
	defaultOnce  sync.Once
	defaultSched *Scheduler
)

// Default returns the lazily-started process-wide scheduler, sized
// runtime.GOMAXPROCS(0). Votes with a nil Config.Sched share it, so every
// auditor in the process draws from one machine-sized pool by default.
func Default() *Scheduler {
	defaultOnce.Do(func() { defaultSched = NewScheduler(0) })
	return defaultSched
}
