# Build/test entry points. `make ci` is the gate CI runs: it includes
# the race detector, which protects the engine locking discipline and
# the concurrent-load tests in internal/server.

GO ?= go

.PHONY: build test race vet ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build vet race
