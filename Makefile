# Build/test entry points. `make ci` is the gate CI runs: it includes
# the race detector, which protects the engine locking discipline and
# the concurrent-load tests in internal/server.

GO ?= go

.PHONY: build test race vet ci bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build vet race

# Monte Carlo engine benchmarks (per-worker Decide sweeps + coloring
# chain), archived as a dated JSON stream of test2json events so runs
# are diffable across machines and commits.
BENCH_OUT ?= BENCH_$(shell date +%Y-%m-%d).json
bench:
	$(GO) test -run='^$$' -bench='Decide$$|ColoringChain' -benchmem -json . > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"
