# Build/test entry points. `make ci` is the gate CI runs: it includes
# the race detector, which protects the engine locking discipline and
# the concurrent-load tests in internal/server.

GO ?= go

.PHONY: build test race vet lint lint-report lint-cache-smoke ci bench bench-guard cover replication-smoke loadgen-smoke cluster-smoke report-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus auditlint, the repo's custom stdlib-only
# analyzer suite (cmd/auditlint, docs/LINTING.md) enforcing the
# determinism, locking and persistence invariants the replay/replication
# layers depend on. -cache reuses the summary cache (.auditlint-cache/,
# gitignored) keyed on source + export-data hashes, so warm runs skip
# the load-and-analyze phase entirely.
lint: vet
	$(GO) run ./cmd/auditlint -cache ./...

# Machine-readable findings report (schema 2, with witness chains) for
# the CI artifact. Exit code is the same 0/1/2 contract as `lint`.
LINT_REPORT ?= auditlint-findings.json
lint-report:
	$(GO) run ./cmd/auditlint -cache -json ./... > $(LINT_REPORT)

# Warm-vs-cold cache smoke: over the real module, the second (warm)
# auditlint run must beat the cold one. Wall-clock assertions belong on
# a deliberate invocation, so the test is env-gated like bench-guard.
lint-cache-smoke:
	LINT_CACHE_SMOKE=1 $(GO) test -run TestCacheWarmFasterThanCold -count=1 -v ./cmd/auditlint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build lint race loadgen-smoke report-smoke

# End-to-end failover drill across real OS processes: build the binary,
# run a primary and a streaming replica, push 50 queries, diff the
# per-session transcript digests, SIGKILL the primary, promote the
# replica over HTTP, and keep serving writes. Exercises the paper's
# simulatability argument (§2.2: auditor state is a pure function of the
# decision history) as an operational failover guarantee.
replication-smoke:
	$(GO) test -run TestReplicationSmoke -count=1 -v ./cmd/auditserver

# End-to-end capacity-harness drill: build auditserver and loadgen as
# real binaries, drive a short mixed workload (all aggregate kinds,
# churned sessions, Zipf statement repetition) over HTTP, and validate
# the LOADGEN report artifact — every request classified, zero
# transport/5xx errors, ordered latency percentiles.
loadgen-smoke:
	$(GO) test -run TestLoadgenSmoke -count=1 -v ./cmd/loadgen

# End-to-end sharded-fleet drill: two shard pairs (primary + streaming
# replica each) plus the auditrouter, all real OS processes, driven by
# the real loadgen binary. Validates the even per-shard request split in
# the LOADGEN report, bit-identical replica transcripts on both pairs,
# then SIGKILLs one primary mid-churn, promotes its replica over HTTP,
# and requires the router to converge onto the promoted member with zero
# transcript divergence — the paper's simulatability argument stretched
# across a horizontally sharded fleet.
cluster-smoke:
	$(GO) test -run TestClusterSmoke -count=1 -v ./cmd/auditrouter

# End-to-end retrospective-auditing drill: auditserver + loadgen +
# auditreport as real binaries. loadgen emits the workload as an ndjson
# audit log, the server exports the matching session journals over
# /v1/journal, and auditreport replays both shapes offline through a
# construction-identical stack (full and prob) with -verify: zero
# live/offline verdict mismatches, and two pipeline runs over the same
# inputs produce byte-identical reports.
report-smoke:
	$(GO) test -run TestReportSmoke -count=1 -v ./cmd/auditreport

# Monte Carlo engine benchmarks — the per-worker Decide sweeps
# {1,2,4,8} with samples-evaluated columns, the deployment-default
# budget latency, the multi-analyst aggregate-QPS sweep over the shared
# scheduler, and the coloring chain — plus the session-manager
# benchmarks (hot-path lookup and the 1000-analyst eviction/replay
# churn) and the query-resolution benchmarks (naive scan vs indexed
# resolver, and the full HTTP Ask path with allocs/op), archived as a
# dated JSON stream of test2json events so runs are diffable across
# machines and commits.
BENCH_OUT ?= BENCH_$(shell date +%Y-%m-%d).json
bench:
	$(GO) test -run='^$$' -bench='Decide$$|DecideDefaultBudget$$|AggregateDecideQPS$$|ColoringChain|^BenchmarkSession|^BenchmarkResolve|^BenchmarkServeAsk' -benchmem -json . ./internal/session ./internal/server > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# Wall-clock tripwire for the workers>1 regression: a parallel
# per-decision cap must not cost materially more than the sequential run
# of the identical decision. Env-gated out of plain `go test` because
# wall-clock assertions belong on a quiet machine, run deliberately.
bench-guard:
	MC_BENCH_GUARD=1 $(GO) test -run TestSumProbWorkerScalingGuard -count=1 -v .

# Coverage with a floor for the session subsystem: the replay/eviction
# machinery is the correctness core of multi-analyst mode, so its
# statement coverage must not rot below the floor.
SESSION_COVER_FLOOR ?= 70.0
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1
	@pct=$$($(GO) test -cover ./internal/session 2>/dev/null | \
		sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	echo "internal/session coverage: $$pct% (floor $(SESSION_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(SESSION_COVER_FLOOR)" \
		'BEGIN { if (p+0 < f+0) { print "FAIL: internal/session coverage below floor"; exit 1 } }'
