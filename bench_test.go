// Benchmark harness: one testing.B target per figure and per
// quantitative claim of the paper. Each bench regenerates its experiment
// at a reduced-but-faithful scale and reports the headline shape numbers
// as custom metrics, so `go test -bench=. -benchmem` doubles as a
// regression check on the reproduction (see EXPERIMENTS.md for the
// paper-scale runs).
package main

import (
	"bytes"
	"fmt"
	"testing"

	"queryaudit/internal/audit"
	"queryaudit/internal/audit/boolrange"
	"queryaudit/internal/audit/maxfull"
	"queryaudit/internal/audit/maxminprob"
	"queryaudit/internal/audit/maxprob"
	"queryaudit/internal/audit/sumfull"
	"queryaudit/internal/audit/sumprob"
	"queryaudit/internal/coloring"
	"queryaudit/internal/experiments"
	"queryaudit/internal/persist"
	"queryaudit/internal/query"
	"queryaudit/internal/randx"
	"queryaudit/internal/synopsis"
	"queryaudit/internal/workload"
)

// BenchmarkFig1TimeToFirstDenialSum regenerates Figure 1: mean number of
// random sum queries answered before the first denial, per database
// size. Metric tden/n is the paper's headline ("almost exactly equal to
// the size of the database" ⇒ ≈ 1.0).
func BenchmarkFig1TimeToFirstDenialSum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1(experiments.Fig1Config{
			Sizes: []int{100, 200, 400}, Trials: 5, Seed: int64(i + 1),
		})
		last := rows[len(rows)-1]
		b.ReportMetric(last.MeanTDen/float64(last.N), "tden/n")
	}
}

// BenchmarkFig2DenialProbabilitySum regenerates Figure 2's three plots.
// Metrics: the long-run denial probability of each plot — the paper's
// shape is plot1 → 1.0, plot2 and plot3 strictly below it.
func BenchmarkFig2DenialProbabilitySum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Fig2Config{
			N: 150, Queries: 400, Trials: 5,
			UpdatePeriod: 10, RangeMin: 20, RangeMax: 40,
			Stride: 20, Seed: int64(i + 1),
		}
		curves := experiments.Fig2(cfg)
		b.ReportMetric(curves[0].Tail(0.3), "p1-tail")
		b.ReportMetric(curves[1].Tail(0.3), "p2-tail")
		b.ReportMetric(curves[2].Tail(0.3), "p3-tail")
	}
}

// BenchmarkFig3DenialProbabilityMax regenerates Figure 3: the denial
// probability of the classical max auditor rises to a plateau strictly
// below 1 — ≈ 0.63 for the paper's duplicates-allowed [21] auditor
// (paper: ≈ 0.68) and higher for this paper's more conservative
// no-duplicates auditor.
func BenchmarkFig3DenialProbabilityMax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Fig3Config{
			N: 150, Queries: 500, Trials: 4, Stride: 25, Seed: int64(i + 1),
			AllowDuplicates: true,
		}
		b.ReportMetric(experiments.Fig3(cfg).Tail(0.3), "plateau-dup")
		cfg.AllowDuplicates = false
		b.ReportMetric(experiments.Fig3(cfg).Tail(0.3), "plateau-nodup")
	}
}

// BenchmarkThm67UtilityBounds checks n/4 ≤ E[T_denial] ≤ n + lg n + 1.
// Metric holds=1.0 means every size satisfied both bounds.
func BenchmarkThm67UtilityBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.UtilityBounds(experiments.Fig1Config{
			Sizes: []int{100, 200, 400}, Trials: 5, Seed: int64(i + 1),
		})
		ok := 0
		for _, r := range rows {
			if r.Holds {
				ok++
			}
		}
		b.ReportMetric(float64(ok)/float64(len(rows)), "holds")
	}
}

// BenchmarkDJLBaselineUtility reproduces the Section 2.1 bound: the DJL
// auditor answers ≈ c disjoint queries (k = n/c, r = 1) and essentially
// none under random workloads.
func BenchmarkDJLBaselineUtility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.DJLBaseline(300, 5, 3, int64(i+1))
		b.ReportMetric(float64(r.AnsweredDisjoint), "disjoint")
		b.ReportMetric(float64(r.AnsweredRandom), "random")
	}
}

// BenchmarkAttackDenialLeakage reproduces the Section 2.2 motivating
// example at scale: fraction of values the attacker extracts from the
// naive auditor vs from the simulatable one.
func BenchmarkAttackDenialLeakage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AttackDemo(50, 4000, int64(i+1))
		b.ReportMetric(r.NaiveCorrectFrac, "naive-frac")
		b.ReportMetric(r.SimulatableCorrectFrac, "sim-frac")
	}
}

// BenchmarkMaxProbAuditor runs the Section 3.1 (λ, δ, γ, T) game: the
// empirical breach fraction must stay within δ while utility remains
// positive.
func BenchmarkMaxProbAuditor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultMaxProb()
		cfg.Trials, cfg.Rounds, cfg.Seed = 6, 8, int64(i+1)
		r := experiments.MaxProb(cfg)
		b.ReportMetric(r.AnsweredFrac, "answered")
		b.ReportMetric(r.BreachFrac, "breach")
	}
}

// BenchmarkMaxMinFullAuditor measures the Section 4 auditor's denial
// curve (no figure in the paper; recorded for completeness).
func BenchmarkMaxMinFullAuditor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.MaxMinFull(experiments.MaxMinFullConfig{
			N: 100, Queries: 150, Trials: 3, Stride: 10, Seed: int64(i + 1),
		})
		b.ReportMetric(c.Tail(0.3), "plateau")
	}
}

// BenchmarkMaxMinProbAuditor exercises the Section 3.2 MCMC auditor
// end-to-end.
func BenchmarkMaxMinProbAuditor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultMaxMinProb()
		cfg.N, cfg.Trials, cfg.Rounds, cfg.Seed = 24, 2, 4, int64(i+1)
		r := experiments.MaxMinProb(cfg)
		b.ReportMetric(r.AnsweredFrac, "answered")
	}
}

// BenchmarkSimulatabilityPrice quantifies Section 7's open question:
// the fraction of the simulatable max auditor's denials whose true
// answer would have been safe to release.
func BenchmarkSimulatabilityPrice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SimulatabilityPrice(experiments.SimulatabilityPriceConfig{
			N: 100, Queries: 250, Trials: 4, Seed: int64(i + 1),
		})
		b.ReportMetric(r.ConservativeFrac(), "conservative")
	}
}

// BenchmarkCollusion contrasts per-user auditing (breaches under
// collusion) with the pooled auditing the paper assumes.
func BenchmarkCollusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Collusion(experiments.CollusionConfig{
			N: 60, Queries: 80, Users: 2, Trials: 10, Seed: int64(i + 1),
		})
		b.ReportMetric(float64(r.SeparateBreaches)/float64(r.Trials), "sep-breach")
		b.ReportMetric(float64(r.PooledBreaches)/float64(r.Trials), "pool-breach")
	}
}

// BenchmarkCrossAggregate quantifies Section 4's motivation: split
// max/min auditors leak under equal-answer collisions; the joint auditor
// never does.
func BenchmarkCrossAggregate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.CrossAggregate(experiments.CrossAggregateConfig{
			N: 30, Queries: 50, Trials: 15, Seed: int64(i + 1),
		})
		b.ReportMetric(float64(r.SplitBreaches)/float64(r.Trials), "split-breach")
		b.ReportMetric(float64(r.JointBreaches)/float64(r.Trials), "joint-breach")
	}
}

// BenchmarkColoringMixing measures the coloring chain's per-step cost
// and the O(k log k) mixing budget of Lemma 3.
func BenchmarkColoringMixing(b *testing.B) {
	rng := randx.New(1)
	syn := synopsis.NewMaxMin(60, 0, 1)
	xs := randx.DuplicateFreeDataset(rng, 60, 0, 1)
	// Build a bag of interleaved max/min queries to create a non-trivial
	// graph.
	for t := 0; t < 10; t++ {
		set := query.NewSet(randx.SubsetSizeBetween(rng, 60, 20, 50)...)
		q := query.Query{Set: set, Kind: query.Max}
		if t%2 == 1 {
			q.Kind = query.Min
		}
		ans := q.Eval(xs)
		var err error
		if q.Kind == query.Max {
			err = syn.AddMax(set, ans)
		} else {
			err = syn.AddMin(set, ans)
		}
		if err != nil {
			b.Fatalf("building synopsis: %v", err)
		}
	}
	g, err := coloring.Build(syn)
	if err != nil {
		b.Fatal(err)
	}
	s, err := coloring.NewSampler(g, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Mix(3)
	}
	b.ReportMetric(float64(coloring.MixSteps(g.K(), 3)), "steps/mix")
}

// BenchmarkProbSumVsMax quantifies the paper's Section 3.1 remark that
// its probabilistic max auditor "is decidedly more efficient than the
// probabilistic sum auditor of [21] which needs to estimate volumes of
// convex polytopes": one decision each, identical (λ, γ, δ, T) and
// database size.
func BenchmarkProbSumVsMax(b *testing.B) {
	const n = 32
	set := make([]int, n)
	for i := range set {
		set[i] = i
	}
	b.Run("max-closed-form", func(b *testing.B) {
		a, err := maxprob.New(n, maxprob.Params{
			Lambda: 0.6, Gamma: 4, Delta: 0.2, T: 10, Samples: 64, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		q := query.New(query.Max, set...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Decide(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sum-polytope-sampling", func(b *testing.B) {
		a, err := sumprob.New(n, sumprob.Params{
			Lambda: 0.6, Gamma: 4, Delta: 0.2, T: 10,
			OuterSamples: 8, InnerSamples: 300, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		q := query.New(query.Sum, set...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Decide(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSumAuditorDecide measures one sum-auditing decision at n=500
// with a saturated history — the inner loop of Figures 1–2.
func BenchmarkSumAuditorDecide(b *testing.B) {
	const n = 500
	rng := randx.New(2)
	a := sumfull.New(n)
	gen := workload.UniformRandom{N: n, Kind: query.Sum, Rng: rng}
	for t := 0; t < n/2; t++ {
		q := gen.Next()
		if d, _ := a.Decide(q); d == audit.Answer {
			a.Record(q, 0)
		}
	}
	qs := make([]query.Query, 64)
	for i := range qs {
		qs[i] = gen.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Decide(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxAuditorDecide measures one max-auditing decision at n=500
// with a saturated history — the inner loop of Figure 3.
func BenchmarkMaxAuditorDecide(b *testing.B) {
	const n = 500
	rng := randx.New(3)
	xs := randx.DuplicateFreeDataset(rng, n, 0, 1)
	a := maxfull.New(n)
	gen := workload.UniformRandom{N: n, Kind: query.Max, Rng: rng}
	for t := 0; t < 2*n; t++ {
		q := gen.Next()
		if d, _ := a.Decide(q); d == audit.Answer {
			a.Record(q, q.Eval(xs))
		}
	}
	qs := make([]query.Query, 64)
	for i := range qs {
		qs[i] = gen.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Decide(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxProbDecide measures one probabilistic (Section 3.1)
// decision including its Monte Carlo sampling, per worker-pool size.
// Decisions are bit-identical across the sub-benchmarks (same seed, same
// counter-based streams); only the wall clock may differ.
func BenchmarkMaxProbDecide(b *testing.B) {
	const n = 100
	rng := randx.New(5)
	set := query.New(query.Max, randx.SubsetSizeBetween(rng, n, 40, 90)...)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			a, err := maxprob.New(n, maxprob.Params{
				Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 50,
				Samples: 512, Workers: workers, Seed: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Decide(set); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaxMinProbDecide measures one Section 3.2 decision (Lemma 2
// pre-check plus nested MCMC estimation), per worker-pool size.
func BenchmarkMaxMinProbDecide(b *testing.B) {
	const n = 30
	rng := randx.New(7)
	q := query.New(query.Max, randx.SubsetSizeBetween(rng, n, 15, 30)...)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			a, err := maxminprob.New(n, maxminprob.Params{
				Lambda: 0.45, Gamma: 4, Delta: 0.2, T: 10,
				OuterSamples: 32, InnerSamples: 16, MixFactor: 2,
				Workers: workers, Seed: 6,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Decide(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBoolRangeOfflineAudit measures the 1-D boolean offline
// auditor (difference-constraint analysis) on a published-table-sized
// history.
func BenchmarkBoolRangeOfflineAudit(b *testing.B) {
	const n = 100
	rng := randx.New(8)
	bits := make([]int, n)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	var hist []query.Answered
	for k := 0; k < 20; k++ {
		i := rng.Intn(n)
		j := i + rng.Intn(n-i)
		var idx []int
		for t := i; t <= j; t++ {
			idx = append(idx, t)
		}
		q := query.New(query.Count, idx...)
		c := 0
		for _, t := range idx {
			c += bits[t]
		}
		hist = append(hist, query.Answered{Query: q, Answer: float64(c)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := boolrange.OfflineAudit(n, hist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersistRoundTrip measures snapshotting and restoring a
// saturated sum audit trail (n = 300).
func BenchmarkPersistRoundTrip(b *testing.B) {
	const n = 300
	rng := randx.New(9)
	a := sumfull.New(n)
	for t := 0; t < 2*n; t++ {
		q := query.Query{Set: query.NewSet(randx.Subset(rng, n)...), Kind: query.Sum}
		if d, _ := a.Decide(q); d == audit.Answer {
			a.Record(q, 0)
		}
	}
	var snapshotBytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := persist.Save(&buf, a); err != nil {
			b.Fatal(err)
		}
		snapshotBytes = buf.Len()
		if _, _, err := persist.Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(snapshotBytes), "snapshot-bytes")
}
